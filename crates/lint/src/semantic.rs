//! The three flow-aware rules over the workspace call graph:
//!
//! * **panic-reachability** — every panic site reachable from a public
//!   fn of a strict-profile file must be excused by an allow directive
//!   at the site or at a fn declaration on the path (a fn-level allow
//!   excuses the whole subtree below that fn).
//! * **par-merge-order** — no shared-state mutation inside (or
//!   reachable from) a parallel closure, and no order-sensitive merge
//!   stage.
//! * **rng-lane-flow** — a seed that reaches `rng_from_seed` on a
//!   parallel path must derive from a `split_seed` lane, even when it
//!   is laundered through helper-fn parameters.
//!
//! Everything here is deterministic: node order follows file order,
//! BFS queues drain in sorted successor order, and findings dedupe
//! through `BTreeSet`s. Soundness caveats (name-based resolution, no
//! type information, no closure-valued variables) are documented in
//! DESIGN.md §16.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::{count_u64, CallGraph, FileCtx, GraphSummary};
use crate::engine::Finding;
use crate::lexer::{TokKind, Token};
use crate::resolve::{bindings_in, ClosureRole, FnItem};
use crate::rules::{rule_applies, Profile, PAR_MERGE_EXEMPT};

/// Output of the semantic pass, indexed per input file.
#[derive(Debug, Default)]
pub struct SemanticResult {
    /// Enforced findings per file (same index as the input slice).
    pub findings: Vec<Vec<Finding>>,
    /// Advisory findings per file (relaxed-profile panic sites).
    pub advisories: Vec<Vec<Finding>>,
    /// Per file: target lines of fn-level `panic-reachability` allow
    /// directives that actually excuse a reachable panic subtree.
    pub used_fn_allows: Vec<BTreeSet<u32>>,
    /// Reachability-aware call-graph summary.
    pub summary: GraphSummary,
}

/// Per-file token context used by the classifiers.
struct FileView<'a> {
    ctx: &'a FileCtx,
    tokens: &'a [Token],
    in_test: &'a [bool],
}

impl FileView<'_> {
    /// Code-token indices within a half-open raw token range.
    fn code_in(&self, start: usize, end: usize) -> Vec<usize> {
        (start..end.min(self.tokens.len()))
            .filter(|&i| {
                !self.in_test[i]
                    && !matches!(
                        self.tokens[i].kind,
                        TokKind::LineComment | TokKind::BlockComment
                    )
            })
            .collect()
    }

    /// Innermost parallel-closure span containing token `ti`, if any.
    fn par_span_of(&self, ti: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (ci, c) in self.ctx.symbols.par_closures.iter().enumerate() {
            if c.role != ClosureRole::Parallel {
                continue;
            }
            let (s, e) = c.body;
            if s <= ti && ti < e {
                let tighter = match best {
                    None => true,
                    Some(b) => self.ctx.symbols.par_closures[b].body.0 < s,
                };
                if tighter {
                    best = Some(ci);
                }
            }
        }
        best
    }
}

/// How a seed-argument expression relates to the lane discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SeedClass {
    /// Provably lane-derived (contains a `split_seed`-family call or a
    /// `.seed` shard-field read) — or otherwise out of scope.
    Pure,
    /// A bare identifier whose provenance depends on context.
    Ident(String),
    /// Anything else: a raw expression with no lane evidence.
    Raw,
}

/// Runs the semantic pass. `fn_allows[i]` holds the target lines of
/// `panic-reachability` allow directives in file `i` (the engine later
/// matches them against fn declaration lines).
pub fn analyze(
    files: &[FileCtx],
    graph: &CallGraph,
    fn_allows: &[BTreeSet<u32>],
) -> SemanticResult {
    let views: Vec<FileView<'_>> = files
        .iter()
        .map(|ctx| FileView {
            ctx,
            tokens: &ctx.tokens,
            in_test: &ctx.in_test,
        })
        .collect();

    let mut result = SemanticResult {
        findings: vec![Vec::new(); files.len()],
        advisories: vec![Vec::new(); files.len()],
        used_fn_allows: vec![BTreeSet::new(); files.len()],
        summary: crate::callgraph::base_summary(files, graph),
    };

    let par_reach = par_reachable(&views, graph);
    result.summary.par_reachable_fns = count_u64(par_reach.len());

    panic_reachability(&views, graph, fn_allows, &par_reach, &mut result);
    par_merge_order(&views, graph, &par_reach, &mut result);
    rng_lane_flow(&views, graph, &par_reach, &mut result);

    for per_file in result.findings.iter_mut().chain(result.advisories.iter_mut()) {
        per_file.sort_by(|a, b| {
            (a.line, a.col, a.rule, a.message.as_str()).cmp(&(
                b.line,
                b.col,
                b.rule,
                b.message.as_str(),
            ))
        });
        per_file.dedup();
    }
    result
}

fn finding(rule: &'static str, file: &str, line: u32, col: u32, message: String) -> Finding {
    Finding {
        rule,
        file: file.to_string(),
        line,
        col,
        message,
        snippet: String::new(),
    }
}

// ---------------------------------------------------------------------
// Parallel reachability (shared by all three rules)
// ---------------------------------------------------------------------

/// Node indices reachable from inside any parallel closure: seeded by
/// the callees invoked within parallel spans (plus bare fn references
/// handed to the pool), closed over the call graph.
fn par_reachable(views: &[FileView<'_>], graph: &CallGraph) -> BTreeSet<usize> {
    let mut seeds: BTreeSet<usize> = BTreeSet::new();
    let seed_name = |name: &str, set: &mut BTreeSet<usize>| {
        if let Some(targets) = graph.by_name.get(name) {
            set.extend(targets.iter().copied());
        }
    };
    for v in views {
        for c in &v.ctx.symbols.par_closures {
            if c.role != ClosureRole::Parallel {
                continue;
            }
            if let Some(name) = &c.merge_callee {
                seed_name(name, &mut seeds);
            }
        }
        for f in &v.ctx.symbols.fns {
            for call in &f.calls {
                if v.par_span_of(call.tok).is_some() {
                    seed_name(&call.callee, &mut seeds);
                }
            }
        }
    }
    let mut reach = seeds.clone();
    let mut queue: VecDeque<usize> = seeds.into_iter().collect();
    while let Some(n) = queue.pop_front() {
        for &s in &graph.succ[n] {
            if reach.insert(s) {
                queue.push_back(s);
            }
        }
    }
    reach
}

// ---------------------------------------------------------------------
// panic-reachability
// ---------------------------------------------------------------------

/// Whether node `n` carries a fn-level panic-reachability allow.
fn node_allowed(views: &[FileView<'_>], graph: &CallGraph, fn_allows: &[BTreeSet<u32>], n: usize) -> bool {
    let node = &graph.nodes[n];
    let item = &views[node.file_idx].ctx.symbols.fns[node.fn_idx];
    let allows = &fn_allows[node.file_idx];
    allows.contains(&item.decl_line) || allows.contains(&item.line)
}

/// BFS from unallowed public entries, never descending into an allowed
/// node. Returns, for each reached node, the parent pointer of the
/// first (deterministic) path that reached it.
fn blocked_reach(
    views: &[FileView<'_>],
    graph: &CallGraph,
    fn_allows: &[BTreeSet<u32>],
    ignore_allow: Option<(usize, u32)>,
) -> BTreeMap<usize, Option<usize>> {
    let allowed = |n: usize| -> bool {
        if let Some((fi, line)) = ignore_allow {
            let node = &graph.nodes[n];
            let item = &views[node.file_idx].ctx.symbols.fns[node.fn_idx];
            if node.file_idx == fi && (item.decl_line == line || item.line == line) {
                return false;
            }
        }
        node_allowed(views, graph, fn_allows, n)
    };
    let entries: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            views[n.file_idx].ctx.profile == Profile::Strict
                && views[n.file_idx].ctx.symbols.fns[n.fn_idx].is_pub
        })
        .map(|(i, _)| i)
        .collect();
    let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    let mut queue = VecDeque::new();
    for e in entries {
        if !allowed(e) && !parent.contains_key(&e) {
            parent.insert(e, None);
            queue.push_back(e);
        }
    }
    while let Some(n) = queue.pop_front() {
        for &s in &graph.succ[n] {
            if allowed(s) || parent.contains_key(&s) {
                continue;
            }
            parent.insert(s, Some(n));
            queue.push_back(s);
        }
    }
    parent
}

/// Panic-site keys emitted by one blocked-reachability pass.
fn panic_site_keys(
    views: &[FileView<'_>],
    graph: &CallGraph,
    reach: &BTreeMap<usize, Option<usize>>,
) -> BTreeSet<(usize, u32, u32)> {
    let mut keys = BTreeSet::new();
    for &n in reach.keys() {
        let node = &graph.nodes[n];
        if views[node.file_idx].ctx.profile != Profile::Strict {
            continue;
        }
        let item = &views[node.file_idx].ctx.symbols.fns[node.fn_idx];
        for site in &item.panic_sites {
            keys.insert((node.file_idx, site.line, site.col));
        }
    }
    keys
}

fn panic_reachability(
    views: &[FileView<'_>],
    graph: &CallGraph,
    fn_allows: &[BTreeSet<u32>],
    _par_reach: &BTreeSet<usize>,
    result: &mut SemanticResult,
) {
    // Advisory pass for relaxed-profile files: every panic site is
    // reported informationally, with no reachability requirement.
    for (fi, v) in views.iter().enumerate() {
        if v.ctx.profile != Profile::Relaxed {
            continue;
        }
        for item in &v.ctx.symbols.fns {
            for site in &item.panic_sites {
                result.advisories[fi].push(finding(
                    "panic-reachability",
                    &v.ctx.file,
                    site.line,
                    site.col,
                    format!(
                        "`{}` in `{}` (relaxed profile: binaries and examples may \
                         panic, reported for visibility only)",
                        site.what, item.name
                    ),
                ));
            }
        }
    }

    let reach = blocked_reach(views, graph, fn_allows, None);
    result.summary.reachable_panic_sites =
        count_u64(panic_site_keys(views, graph, &reach).len());

    // Enforced findings: one per reachable panic site in a strict file,
    // carrying the first discovered entry path.
    for &n in reach.keys() {
        let node = &graph.nodes[n];
        let v = &views[node.file_idx];
        if v.ctx.profile != Profile::Strict
            || !rule_applies("panic-reachability", &v.ctx.crate_name)
        {
            continue;
        }
        let item = &v.ctx.symbols.fns[node.fn_idx];
        if item.panic_sites.is_empty() {
            continue;
        }
        let path = path_to(graph, &reach, n);
        for site in &item.panic_sites {
            result.findings[node.file_idx].push(finding(
                "panic-reachability",
                &v.ctx.file,
                site.line,
                site.col,
                format!(
                    "`{}` is reachable from public API via {} — return a QfcError, or \
                     excuse the site (or an entry fn on the path) with a justified \
                     allow(panic-reachability)",
                    site.what, path
                ),
            ));
        }
    }

    // Fn-level allow usage: an allow is *used* iff deactivating it would
    // let at least one new panic site become reachable.
    let base_keys = panic_site_keys(views, graph, &reach);
    for (fi, lines) in fn_allows.iter().enumerate() {
        for &line in lines {
            // Only consider directives that actually sit on a fn decl.
            let on_fn = views[fi]
                .ctx
                .symbols
                .fns
                .iter()
                .any(|f| f.decl_line == line || f.line == line);
            if !on_fn {
                continue;
            }
            let without = blocked_reach(views, graph, fn_allows, Some((fi, line)));
            if panic_site_keys(views, graph, &without)
                .difference(&base_keys)
                .next()
                .is_some()
            {
                result.used_fn_allows[fi].insert(line);
            }
        }
    }
}

/// Renders the entry path to node `n` as `entry → a → b`, capped at six
/// hops with the entry's location appended.
fn path_to(graph: &CallGraph, parent: &BTreeMap<usize, Option<usize>>, n: usize) -> String {
    let mut chain = vec![n];
    let mut cur = n;
    while let Some(Some(p)) = parent.get(&cur) {
        chain.push(*p);
        cur = *p;
        if chain.len() > 32 {
            break;
        }
    }
    chain.reverse();
    let names: Vec<&str> = chain
        .iter()
        .map(|&i| {
            graph.nodes[i]
                .id
                .rsplit(':')
                .next()
                .unwrap_or(graph.nodes[i].id.as_str())
        })
        .collect();
    let entry_id = &graph.nodes[chain[0]].id;
    let shown: Vec<&str> = if names.len() > 6 {
        let mut v = names[..3].to_vec();
        v.push("…");
        v.extend_from_slice(&names[names.len() - 2..]);
        v
    } else {
        names
    };
    format!("pub fn {} [{}]", shown.join(" → "), entry_id)
}

// ---------------------------------------------------------------------
// par-merge-order
// ---------------------------------------------------------------------

/// Method names that reorder a merge stage's input.
const ORDER_SENSITIVE: &[&str] = &["rev", "pop", "swap_remove"];

fn par_merge_order(
    views: &[FileView<'_>],
    graph: &CallGraph,
    par_reach: &BTreeSet<usize>,
    result: &mut SemanticResult,
) {
    // (a) Direct shapes inside parallel closures: compound assignment to
    // captured state, and shared-state hazard identifiers. These fire in
    // every crate — even PAR_MERGE_EXEMPT ones — because a mutation
    // *inside* a parallel closure is never the runtime's own machinery.
    for (fi, v) in views.iter().enumerate() {
        for item in &v.ctx.symbols.fns {
            for a in &item.assigns {
                let Some(ci) = v.par_span_of(a.tok) else {
                    continue;
                };
                let closure = &v.ctx.symbols.par_closures[ci];
                let (s, e) = closure.body;
                let mut local = bindings_in(v.tokens, v.in_test, s, e);
                local.extend(closure.params.iter().cloned());
                let captured = match &a.root {
                    Some(r) => r == "self" || !local.contains(r),
                    None => true,
                };
                if captured {
                    let what = a.root.as_deref().unwrap_or("<expr>");
                    result.findings[fi].push(finding(
                        "par-merge-order",
                        &v.ctx.file,
                        a.line,
                        a.col,
                        format!(
                            "`{}` mutates `{}`, which is captured by the {} closure at \
                             line {} — shard results must merge through the runtime's \
                             index-ordered fold, not a shared accumulator",
                            a.op, what, closure.kind, closure.line
                        ),
                    ));
                }
            }
            for h in &item.hazards {
                let Some(ci) = v.par_span_of(h.tok) else {
                    continue;
                };
                let closure = &v.ctx.symbols.par_closures[ci];
                result.findings[fi].push(finding(
                    "par-merge-order",
                    &v.ctx.file,
                    h.line,
                    h.col,
                    format!(
                        "shared-state `{}` inside the {} closure at line {} — \
                         per-shard results must stay private until the index-ordered \
                         merge",
                        h.what, closure.kind, closure.line
                    ),
                ));
            }
        }
    }

    // (b) Transitive: hazards in fns reachable from a parallel closure,
    // excluding the runtime/observability crates that own their locks.
    for &n in par_reach {
        let node = &graph.nodes[n];
        let v = &views[node.file_idx];
        if PAR_MERGE_EXEMPT.contains(&v.ctx.crate_name.as_str()) {
            continue;
        }
        let item = &v.ctx.symbols.fns[node.fn_idx];
        for h in &item.hazards {
            if v.par_span_of(h.tok).is_some() {
                continue; // already reported by the direct pass
            }
            result.findings[node.file_idx].push(finding(
                "par-merge-order",
                &v.ctx.file,
                h.line,
                h.col,
                format!(
                    "shared-state `{}` in `{}`, which is reachable from a parallel \
                     closure — synchronized mutation on a shard path makes the merge \
                     order scheduling-dependent",
                    h.what, item.name
                ),
            ));
        }
    }

    // (c) Order-sensitive merge stages: `.rev()/.pop()/.swap_remove()`
    // inside a par_shots merge closure or a named merge fn.
    for (fi, v) in views.iter().enumerate() {
        for c in &v.ctx.symbols.par_closures {
            if c.role != ClosureRole::Merge {
                continue;
            }
            let mut spans: Vec<(usize, &FileView<'_>, usize, usize)> = Vec::new();
            if c.body.0 < c.body.1 {
                spans.push((fi, v, c.body.0, c.body.1));
            }
            if let Some(name) = &c.merge_callee {
                if let Some(targets) = graph.by_name.get(name) {
                    for &t in targets {
                        let tn = &graph.nodes[t];
                        let tv = &views[tn.file_idx];
                        if let Some((s, e)) = tv.ctx.symbols.fns[tn.fn_idx].body {
                            spans.push((tn.file_idx, tv, s, e));
                        }
                    }
                }
            }
            for (sfi, sv, s, e) in spans {
                let code = sv.code_in(s, e);
                for (k, &ti) in code.iter().enumerate() {
                    let t = &sv.tokens[ti];
                    let is_call = t.kind == TokKind::Ident
                        && ORDER_SENSITIVE.contains(&t.text.as_str())
                        && k > 0
                        && sv.tokens[code[k - 1]].kind == TokKind::Punct
                        && sv.tokens[code[k - 1]].text == "."
                        && code
                            .get(k + 1)
                            .map(|&m| {
                                sv.tokens[m].kind == TokKind::Punct && sv.tokens[m].text == "("
                            })
                            .unwrap_or(false);
                    if is_call {
                        result.findings[sfi].push(finding(
                            "par-merge-order",
                            &sv.ctx.file,
                            t.line,
                            t.col,
                            format!(
                                "`.{}()` in the merge stage of the {} at line {} — the \
                                 merge must fold shard results in index order",
                                t.text, c.kind, c.line
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// rng-lane-flow
// ---------------------------------------------------------------------

fn rng_lane_flow(
    views: &[FileView<'_>],
    graph: &CallGraph,
    par_reach: &BTreeSet<usize>,
    result: &mut SemanticResult,
) {
    // Lane-deriver name set D: fixpoint from `split_seed` over "some fn
    // of this name directly calls a D-member". Over-approximate by
    // design: an argument expression that routes through any D-member
    // is treated as lane-derived.
    let mut derivers: BTreeSet<String> = BTreeSet::new();
    derivers.insert("split_seed".to_string());
    loop {
        let mut grew = false;
        for v in views {
            for f in &v.ctx.symbols.fns {
                if derivers.contains(&f.name) {
                    continue;
                }
                if f.calls.iter().any(|c| derivers.contains(&c.callee)) {
                    derivers.insert(f.name.clone());
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }

    // Seed-sink positions: for each fn name, the call-site argument
    // positions whose value flows (possibly through further helper
    // parameters) into an `rng_from_seed` outside any parallel span.
    let mut sink_pos: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    loop {
        let mut grew = false;
        for v in views.iter() {
            for item in &v.ctx.symbols.fns {
                let has_self = item.params.first().map(|p| p.name == "self").unwrap_or(false);
                let mark = |param_idx: usize, sink_pos: &mut BTreeMap<String, BTreeSet<usize>>| -> bool {
                    let pos = if has_self {
                        match param_idx.checked_sub(1) {
                            Some(p) => p,
                            None => return false, // receiver position: out of scope
                        }
                    } else {
                        param_idx
                    };
                    sink_pos.entry(item.name.clone()).or_default().insert(pos)
                };
                for ctor in &item.rng_ctors {
                    if v.par_span_of(ctor.tok).is_some() {
                        continue; // handled directly at the emission pass
                    }
                    let Some((s, e)) = ctor.arg else { continue };
                    if let SeedClass::Ident(x) = classify_expr(v, &derivers, s, e, 0) {
                        for (pi, p) in item.params.iter().enumerate() {
                            if p.name == x && mark(pi, &mut sink_pos) {
                                grew = true;
                            }
                        }
                    }
                }
                for call in &item.calls {
                    if v.par_span_of(call.tok).is_some() {
                        continue;
                    }
                    let Some(positions) = sink_pos.get(&call.callee).cloned() else {
                        continue;
                    };
                    for pos in positions {
                        let Some(&(s, e)) = call.args.get(pos) else {
                            continue;
                        };
                        if let SeedClass::Ident(x) = classify_expr(v, &derivers, s, e, 0) {
                            for (pi, p) in item.params.iter().enumerate() {
                                if p.name == x && mark(pi, &mut sink_pos) {
                                    grew = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }

    // Emission: inside parallel closures (or fns reachable from one),
    // a raw seed reaching rng_from_seed — directly or through a sink
    // position — is a finding.
    let mut node_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        node_of.insert((n.file_idx, n.fn_idx), i);
    }
    let mut emitted: BTreeSet<(usize, u32, u32)> = BTreeSet::new();
    for (fi, v) in views.iter().enumerate() {
        if !rule_applies("rng-lane-flow", &v.ctx.crate_name) {
            continue;
        }
        for (ni, item) in v.ctx.symbols.fns.iter().enumerate() {
            let fn_on_par_path = node_of
                .get(&(fi, ni))
                .map(|n| par_reach.contains(n))
                .unwrap_or(false);
            for ctor in &item.rng_ctors {
                let in_span = v.par_span_of(ctor.tok).is_some();
                if !in_span && !fn_on_par_path {
                    continue;
                }
                let Some((s, e)) = ctor.arg else { continue };
                let class = resolve_class(v, &derivers, item, ctor.tok, s, e);
                let raw = match class {
                    SeedClass::Pure => false,
                    SeedClass::Raw => true,
                    // Outside a span, a bare enclosing-fn parameter
                    // shifts the obligation to the callers (the sink
                    // fixpoint above); anything else is raw.
                    SeedClass::Ident(x) => {
                        in_span || !item.params.iter().any(|p| p.name == x)
                    }
                };
                if raw && emitted.insert((fi, ctor.line, ctor.col)) {
                    result.findings[fi].push(finding(
                        "rng-lane-flow",
                        &v.ctx.file,
                        ctor.line,
                        ctor.col,
                        format!(
                            "`rng_from_seed` on a parallel path in `{}` takes a seed \
                             with no split_seed lane evidence — identical shard seeds \
                             draw identical streams",
                            item.name
                        ),
                    ));
                }
            }
            for call in &item.calls {
                let in_span = v.par_span_of(call.tok).is_some();
                if !in_span && !fn_on_par_path {
                    continue;
                }
                let Some(positions) = sink_pos.get(&call.callee) else {
                    continue;
                };
                for &pos in positions {
                    // Sink positions are call-site positional indices
                    // (receiver-adjusted at recording time).
                    let Some(&(s, e)) = call.args.get(pos) else {
                        continue;
                    };
                    let class = resolve_class(v, &derivers, item, call.tok, s, e);
                    let raw = match class {
                        SeedClass::Pure => false,
                        SeedClass::Raw => true,
                        SeedClass::Ident(x) => {
                            in_span || !item.params.iter().any(|p| p.name == x)
                        }
                    };
                    if raw && emitted.insert((fi, call.line, call.col)) {
                        result.findings[fi].push(finding(
                            "rng-lane-flow",
                            &v.ctx.file,
                            call.line,
                            call.col,
                            format!(
                                "seed argument {} of `{}` reaches rng_from_seed on a \
                                 parallel path without split_seed lane evidence — \
                                 derive it with split_seed(seed, lane) at the parallel \
                                 boundary",
                                pos, call.callee
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Classifies an argument expression at a use site: resolves bare
/// identifiers against the innermost parallel-closure context when the
/// use sits inside one (closure params and span-local `let`s are
/// lane-pure shard data; everything captured is raw).
fn resolve_class(
    v: &FileView<'_>,
    derivers: &BTreeSet<String>,
    item: &FnItem,
    use_tok: usize,
    s: usize,
    e: usize,
) -> SeedClass {
    let class = classify_expr(v, derivers, s, e, 0);
    let SeedClass::Ident(name) = &class else {
        return class;
    };
    let Some(ci) = v.par_span_of(use_tok) else {
        return class;
    };
    let closure = &v.ctx.symbols.par_closures[ci];
    if closure.params.iter().any(|p| p == name) {
        // Shard-item data: the runtime hands each closure its own item.
        return SeedClass::Pure;
    }
    let (cs, ce) = closure.body;
    if bindings_in(v.tokens, v.in_test, cs, ce).contains(name) {
        // A span-local binding: classify its initializer.
        if let Some((is, ie)) = let_init_range(v, cs, ce, name) {
            return match classify_expr(v, derivers, is, ie, 1) {
                SeedClass::Ident(_) => SeedClass::Raw,
                other => other,
            };
        }
        return SeedClass::Raw;
    }
    // Captured from the enclosing fn (including its parameters): raw.
    let _ = item;
    SeedClass::Raw
}

/// Classifies a token-range expression. Depth-capped to keep the
/// analysis total on adversarial input.
fn classify_expr(
    v: &FileView<'_>,
    derivers: &BTreeSet<String>,
    s: usize,
    e: usize,
    depth: usize,
) -> SeedClass {
    if depth > 8 {
        return SeedClass::Raw;
    }
    let code = v.code_in(s, e);
    if code.is_empty() {
        return SeedClass::Raw;
    }
    // Lane evidence: a call to a deriver, or a `.seed` field read (shard
    // seed fields are plumbed by checked planning code).
    for (k, &ti) in code.iter().enumerate() {
        let t = &v.tokens[ti];
        if t.kind == TokKind::Ident && derivers.contains(&t.text) {
            let next_open = code
                .get(k + 1)
                .map(|&m| v.tokens[m].kind == TokKind::Punct && v.tokens[m].text == "(")
                .unwrap_or(false);
            if next_open {
                return SeedClass::Pure;
            }
        }
        if t.kind == TokKind::Ident
            && t.text == "seed"
            && k > 0
            && v.tokens[code[k - 1]].kind == TokKind::Punct
            && v.tokens[code[k - 1]].text == "."
        {
            return SeedClass::Pure;
        }
    }
    // Strip leading reference/deref sigils, then look for a bare ident.
    let mut k = 0usize;
    while k < code.len() {
        let t = &v.tokens[code[k]];
        let sigil = (t.kind == TokKind::Punct && (t.text == "&" || t.text == "*"))
            || (t.kind == TokKind::Ident && t.text == "mut");
        if sigil {
            k += 1;
        } else {
            break;
        }
    }
    if k + 1 == code.len() && v.tokens[code[k]].kind == TokKind::Ident {
        return SeedClass::Ident(v.tokens[code[k]].text.clone());
    }
    SeedClass::Raw
}

/// Token range of the initializer of `let … name … = <init>;` inside the
/// half-open span, if one exists.
fn let_init_range(
    v: &FileView<'_>,
    s: usize,
    e: usize,
    name: &str,
) -> Option<(usize, usize)> {
    let code = v.code_in(s, e);
    let mut j = 0usize;
    while j < code.len() {
        let t = &v.tokens[code[j]];
        if !(t.kind == TokKind::Ident && t.text == "let") {
            j += 1;
            continue;
        }
        // Pattern tokens up to the `=`.
        let mut k = j + 1;
        let mut saw_name = false;
        let mut eq: Option<usize> = None;
        while let Some(&ti) = code.get(k) {
            let u = &v.tokens[ti];
            if u.kind == TokKind::Punct && u.text == "=" {
                eq = Some(k);
                break;
            }
            if u.kind == TokKind::Punct && (u.text == ";" || u.text == "{") {
                break;
            }
            if u.kind == TokKind::Ident && u.text == name {
                saw_name = true;
            }
            k += 1;
        }
        let Some(eq) = eq else {
            j = k + 1;
            continue;
        };
        // Initializer: from after `=` to the statement-final `;`.
        let mut depth = 0i64;
        let mut end = None;
        let mut m = eq + 1;
        while let Some(&ti) = code.get(m) {
            let u = &v.tokens[ti];
            if u.kind == TokKind::Punct {
                match u.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth <= 0 => {
                        end = Some(ti);
                        break;
                    }
                    _ => {}
                }
            }
            m += 1;
        }
        if saw_name {
            let start_ti = code.get(eq + 1).copied()?;
            let end_ti = end.unwrap_or(v.tokens.len());
            return Some((start_ti, end_ti));
        }
        j = m + 1;
    }
    None
}
