//! The deterministic workspace call graph.
//!
//! Nodes are the `fn` items recovered by [`crate::resolve`]; edges link
//! a caller to **every** workspace fn sharing the callee's name (the
//! resolver is name-based and keeps no type information, so the graph
//! is a deliberate over-approximation — see DESIGN.md §16). The graph
//! serializes to a canonical `target/CALLGRAPH.json` that is
//! byte-identical across runs and machines: nodes are sorted by
//! (file, line), edges by (from, to), and no timestamp or absolute
//! path ever enters the output.

use std::collections::BTreeMap;

use crate::lexer::Token;
use crate::report::json_str;
use crate::resolve::{ClosureRole, FileSymbols};
use crate::rules::Profile;

/// One analyzed file: identity, token stream, and resolved symbols.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Owning crate (package name, e.g. `qfc-core`), or the pseudo
    /// crates `qfc` / `examples` for relaxed-profile scopes.
    pub crate_name: String,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// Lint profile the file is analyzed under.
    pub profile: Profile,
    /// Full token stream (the semantic pass classifies sub-expressions).
    pub tokens: Vec<Token>,
    /// Per-token `#[cfg(test)]` mask aligned with `tokens`.
    pub in_test: Vec<bool>,
    /// Resolved symbols.
    pub symbols: FileSymbols,
}

/// One call-graph node (a `fn` item in some file).
#[derive(Debug, Clone)]
pub struct Node {
    /// Index into the [`FileCtx`] slice the graph was built from.
    pub file_idx: usize,
    /// Index into that file's [`FileSymbols::fns`].
    pub fn_idx: usize,
    /// Stable id: `{file}:{line}:{name}`.
    pub id: String,
}

/// The workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Nodes sorted by (file order, source order).
    pub nodes: Vec<Node>,
    /// Function name → node indices bearing that name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Deduplicated (caller, callee-candidate) node-index pairs, sorted.
    pub edges: Vec<(usize, usize)>,
    /// Successor adjacency derived from `edges`.
    pub succ: Vec<Vec<usize>>,
}

/// Headline numbers for the JSON summary block. The reachability
/// fields are filled by the semantic pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphSummary {
    /// Total fn nodes.
    pub nodes: u64,
    /// Total (deduplicated) candidate call edges.
    pub edges: u64,
    /// Public fns of strict-profile files (panic-reachability entries).
    pub entry_points: u64,
    /// Total statically identified panic sites.
    pub panic_sites: u64,
    /// Panic sites reachable from an entry point (before allows).
    pub reachable_panic_sites: u64,
    /// Fns reachable from inside a parallel closure.
    pub par_reachable_fns: u64,
    /// Total slice/array indexing expressions (audit metric).
    pub index_sites: u64,
}

/// Builds the call graph over `files` (which must already be in final
/// sorted order — node order follows file order).
pub fn build(files: &[FileCtx]) -> CallGraph {
    let mut nodes = Vec::new();
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (file_idx, f) in files.iter().enumerate() {
        for (fn_idx, item) in f.symbols.fns.iter().enumerate() {
            let id = format!("{}:{}:{}", f.file, item.line, item.name);
            by_name
                .entry(item.name.clone())
                .or_default()
                .push(nodes.len());
            nodes.push(Node {
                file_idx,
                fn_idx,
                id,
            });
        }
    }
    let mut edges = Vec::new();
    for (ni, node) in nodes.iter().enumerate() {
        let item = &files[node.file_idx].symbols.fns[node.fn_idx];
        for call in &item.calls {
            if let Some(targets) = by_name.get(&call.callee) {
                for &t in targets {
                    edges.push((ni, t));
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let mut succ = vec![Vec::new(); nodes.len()];
    for &(a, b) in &edges {
        succ[a].push(b);
    }
    CallGraph {
        nodes,
        by_name,
        edges,
        succ,
    }
}

/// Node indices that are panic-reachability entry points: public fns of
/// strict-profile files.
pub fn entry_points(files: &[FileCtx], graph: &CallGraph) -> Vec<usize> {
    graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            files[n.file_idx].profile == Profile::Strict
                && files[n.file_idx].symbols.fns[n.fn_idx].is_pub
        })
        .map(|(i, _)| i)
        .collect()
}

/// Serializes the graph to the canonical `qfc-callgraph/1` JSON schema.
/// `summary` carries the reachability stats computed by the semantic
/// pass. The output is deterministic: same inputs, same bytes.
pub fn to_json(files: &[FileCtx], graph: &CallGraph, summary: &GraphSummary) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"qfc-callgraph/1\",\n");
    out.push_str(&format!(
        "  \"tool_version\": {},\n",
        json_str(env!("CARGO_PKG_VERSION"))
    ));

    out.push_str("  \"nodes\": [\n");
    for (i, node) in graph.nodes.iter().enumerate() {
        let f = &files[node.file_idx];
        let item = &f.symbols.fns[node.fn_idx];
        let mut callees: Vec<&str> = item.calls.iter().map(|c| c.callee.as_str()).collect();
        callees.sort_unstable();
        callees.dedup();
        let callee_list: Vec<String> = callees.iter().map(|c| json_str(c)).collect();
        out.push_str(&format!(
            "    {{\"id\": {}, \"crate\": {}, \"file\": {}, \"line\": {}, \"name\": {}, \
             \"pub\": {}, \"panic_sites\": {}, \"index_sites\": {}, \"rng_ctors\": {}, \
             \"calls\": [{}]}}{}\n",
            json_str(&node.id),
            json_str(&f.crate_name),
            json_str(&f.file),
            item.line,
            json_str(&item.name),
            item.is_pub,
            item.panic_sites.len(),
            item.index_sites,
            item.rng_ctors.len(),
            callee_list.join(", "),
            if i + 1 < graph.nodes.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"edges\": [\n");
    for (i, &(a, b)) in graph.edges.iter().enumerate() {
        out.push_str(&format!(
            "    [{}, {}]{}\n",
            json_str(&graph.nodes[a].id),
            json_str(&graph.nodes[b].id),
            if i + 1 < graph.edges.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");

    let entries = entry_points(files, graph);
    out.push_str("  \"entry_points\": [\n");
    for (i, &e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            json_str(&graph.nodes[e].id),
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");

    let mut closures = Vec::new();
    for f in files {
        for c in &f.symbols.par_closures {
            closures.push(format!(
                "    {{\"kind\": {}, \"file\": {}, \"line\": {}, \"role\": {}}}",
                json_str(&c.kind),
                json_str(&f.file),
                c.line,
                json_str(match c.role {
                    ClosureRole::Parallel => "parallel",
                    ClosureRole::Merge => "merge",
                }),
            ));
        }
    }
    out.push_str("  \"par_closures\": [\n");
    out.push_str(&closures.join(",\n"));
    if !closures.is_empty() {
        out.push('\n');
    }
    out.push_str("  ],\n");

    out.push_str(&format!(
        "  \"summary\": {{\"nodes\": {}, \"edges\": {}, \"entry_points\": {}, \
         \"panic_sites\": {}, \"reachable_panic_sites\": {}, \"par_reachable_fns\": {}, \
         \"index_sites\": {}}}\n",
        summary.nodes,
        summary.edges,
        summary.entry_points,
        summary.panic_sites,
        summary.reachable_panic_sites,
        summary.par_reachable_fns,
        summary.index_sites,
    ));
    out.push_str("}\n");
    out
}

/// Widens a count for the summary block (infallible in practice).
pub fn count_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Computes the static half of the summary (everything except the
/// reachability fields, which the semantic pass owns).
pub fn base_summary(files: &[FileCtx], graph: &CallGraph) -> GraphSummary {
    let mut s = GraphSummary {
        nodes: count_u64(graph.nodes.len()),
        edges: count_u64(graph.edges.len()),
        entry_points: count_u64(entry_points(files, graph).len()),
        ..GraphSummary::default()
    };
    for f in files {
        for item in &f.symbols.fns {
            s.panic_sites += count_u64(item.panic_sites.len());
            s.index_sites += u64::from(item.index_sites);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::resolve::resolve_file;

    fn ctx(crate_name: &str, file: &str, profile: Profile, src: &str) -> FileCtx {
        let tokens = lex(src);
        let in_test = vec![false; tokens.len()];
        let symbols = resolve_file(&tokens, &in_test);
        FileCtx {
            crate_name: crate_name.to_string(),
            file: file.to_string(),
            profile,
            tokens,
            in_test,
            symbols,
        }
    }

    #[test]
    fn edges_link_by_name_across_files() {
        let files = vec![
            ctx(
                "qfc-a",
                "crates/a/src/lib.rs",
                Profile::Strict,
                "pub fn entry() { helper() }\n",
            ),
            ctx(
                "qfc-b",
                "crates/b/src/lib.rs",
                Profile::Strict,
                "pub fn helper() { }\nfn helper_unrelated() { }\n",
            ),
        ];
        let g = build(&files);
        assert_eq!(g.nodes.len(), 3);
        assert_eq!(g.edges.len(), 1);
        let (a, b) = g.edges[0];
        assert_eq!(g.nodes[a].id, "crates/a/src/lib.rs:1:entry");
        assert_eq!(g.nodes[b].id, "crates/b/src/lib.rs:1:helper");
        assert_eq!(entry_points(&files, &g).len(), 2);
    }

    #[test]
    fn json_is_deterministic() {
        let files = vec![ctx(
            "qfc-a",
            "crates/a/src/lib.rs",
            Profile::Strict,
            "pub fn f() { g() }\nfn g() { h.unwrap(); }\n",
        )];
        let g = build(&files);
        let s = base_summary(&files, &g);
        let one = to_json(&files, &g, &s);
        let two = to_json(&files, &build(&files), &base_summary(&files, &build(&files)));
        assert_eq!(one, two);
        assert!(one.contains("\"schema\": \"qfc-callgraph/1\""));
        assert!(one.contains("\"panic_sites\": 1"));
    }
}
