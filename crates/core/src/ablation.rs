//! Ablation studies of the design choices DESIGN.md calls out: the pump
//! scheme (the paper's central §II claim), the tomography reconstructor,
//! and the coincidence-window choice behind every CAR figure.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_mathkit::rng::split_seed;
use qfc_photonics::pump::PumpConfig;
use qfc_photonics::units::Power;
use qfc_quantum::bell::werner_state;
use qfc_quantum::fidelity::state_fidelity;
use qfc_tomography::counts::simulate_counts_seeded;
use qfc_tomography::reconstruct::{
    linear_reconstruction, mle_reconstruction, MleAcceleration, MleOptions,
};
use qfc_tomography::settings::all_settings;

use crate::heralded::{run_heralded_experiment, run_stability_experiment, HeraldedConfig, StabilityConfig};
use crate::source::QfcSource;

/// One pump scheme's stability outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PumpSchemeOutcome {
    /// Scheme label.
    pub scheme: String,
    /// Peak-to-peak relative fluctuation over the run.
    pub relative_fluctuation: f64,
    /// Whether the scheme needs active feedback hardware.
    pub needs_active_stabilization: bool,
}

/// Ablation of the §II pump scheme: self-locked vs actively stabilized
/// external vs free-running external, same environment, same seed.
pub fn pump_scheme_ablation(config: &StabilityConfig, seed: u64) -> Vec<PumpSchemeOutcome> {
    let power = Power::from_mw(15.0);
    let schemes: [(&str, PumpConfig, bool); 3] = [
        ("self-locked", PumpConfig::SelfLockedCw { power }, false),
        (
            "external + active lock",
            PumpConfig::ExternalCw {
                power,
                actively_stabilized: true,
            },
            true,
        ),
        (
            "external free-running",
            PumpConfig::ExternalCw {
                power,
                actively_stabilized: false,
            },
            false,
        ),
    ];
    // The three schemes share the same environment and seed, so each is
    // an independent task on the worker pool.
    qfc_runtime::par_map(&schemes, |&(label, pump, active)| {
        let source = QfcSource::paper_device().with_pump(pump);
        let report = run_stability_experiment(&source, config, seed); // qfc-lint: allow(rng-lane-flow) — matched-seed comparison by design: every pump scheme must see the identical shot stream so differences are attributable to the pump alone
        PumpSchemeOutcome {
            scheme: label.to_owned(),
            relative_fluctuation: report.relative_fluctuation,
            needs_active_stabilization: active,
        }
    })
}

/// One row of the tomography-reconstructor ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TomographyAblationRow {
    /// Counts per setting.
    pub shots_per_setting: u64,
    /// Fidelity of linear inversion (+ physicality projection) with the
    /// true state.
    pub linear_fidelity: f64,
    /// Fidelity of the MLE (RρR) reconstruction with the true state.
    pub mle_fidelity: f64,
    /// RρR iterations the classic MLE run spent.
    pub mle_iterations: usize,
    /// Fidelity of the accelerated (over-relaxed RρR) MLE run.
    pub accelerated_fidelity: f64,
    /// Iterations the accelerated run spent reaching the same tolerance.
    pub accelerated_iterations: usize,
}

/// Ablation of the reconstructor at decreasing statistics: MLE's
/// advantage appears at low counts, where linear inversion leaves the
/// physical cone. Each row also runs the over-relaxed RρR schedule
/// against the classic one at the same tolerance, recording the
/// iteration cut the accelerated path buys.
pub fn tomography_ablation(shots: &[u64], seed: u64) -> Vec<TomographyAblationRow> {
    let truth = werner_state(0.83, 0.0);
    let settings = all_settings(2);
    // Each statistics level samples and reconstructs on its own
    // split-seed stream, independent of the others.
    let indexed: Vec<(usize, u64)> = shots.iter().copied().enumerate().collect();
    qfc_runtime::par_map(&indexed, |&(row, n)| {
        let data = simulate_counts_seeded(&truth, &settings, n, split_seed(seed, cast::usize_to_u64(row)));
        let lin = linear_reconstruction(&data);
        let mle = mle_reconstruction(&data, &MleOptions::default());
        let accel = mle_reconstruction(
            &data,
            &MleOptions {
                acceleration: MleAcceleration::accelerated(),
                ..MleOptions::default()
            },
        );
        TomographyAblationRow {
            shots_per_setting: n,
            linear_fidelity: state_fidelity(&lin, &truth),
            mle_fidelity: state_fidelity(&mle.rho, &truth),
            mle_iterations: mle.iterations,
            accelerated_fidelity: state_fidelity(&accel.rho, &truth),
            accelerated_iterations: accel.iterations,
        }
    })
}

/// One row of the coincidence-window ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowAblationRow {
    /// Coincidence window, ps.
    pub window_ps: i64,
    /// Channel-1 CAR at this window.
    pub car: f64,
    /// Channel-1 detected coincidence rate, Hz.
    pub coincidence_rate_hz: f64,
}

/// Ablation of the coincidence window: short windows cut the 1.45-ns
/// correlation envelope (losing true pairs), long windows integrate
/// accidentals — CAR peaks in between.
pub fn window_ablation(windows_ps: &[i64], seed: u64) -> Vec<WindowAblationRow> {
    let source = QfcSource::paper_device();
    // Same seed for every window: the tag streams are identical, only the
    // coincidence gating changes, which is exactly the comparison wanted.
    qfc_runtime::par_map(windows_ps, |&w| {
        let mut cfg = HeraldedConfig::fast_demo();
        cfg.channels = 1;
        cfg.duration_s = 20.0;
        cfg.linewidth_pairs = 500;
        cfg.coincidence_window_ps = w;
        let report = run_heralded_experiment(&source, &cfg, seed);
        WindowAblationRow {
            window_ps: w,
            car: report.channels[0].car,
            coincidence_rate_hz: report.channels[0].coincidence_rate_hz,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pump_scheme_ordering() {
        let results = pump_scheme_ablation(&StabilityConfig::paper(), 91);
        assert_eq!(results.len(), 3);
        let locked = results[0].relative_fluctuation;
        let active = results[1].relative_fluctuation;
        let free = results[2].relative_fluctuation;
        // Self-locked and actively stabilized both beat free-running…
        assert!(locked < free, "locked {locked} vs free {free}");
        assert!(active < free, "active {active} vs free {free}");
        // …and only the self-locked scheme needs no feedback hardware.
        assert!(!results[0].needs_active_stabilization);
        assert!(results[1].needs_active_stabilization);
    }

    #[test]
    fn mle_wins_at_low_counts() {
        let rows = tomography_ablation(&[20, 2000], 99);
        // At high statistics both are excellent.
        assert!(rows[1].linear_fidelity > 0.99);
        assert!(rows[1].mle_fidelity > 0.99);
        // At low statistics MLE does not trail linear inversion.
        assert!(
            rows[0].mle_fidelity >= rows[0].linear_fidelity - 0.02,
            "low counts: MLE {} vs linear {}",
            rows[0].mle_fidelity,
            rows[0].linear_fidelity
        );
        // The over-relaxed schedule reaches the same answer without
        // spending more of the iteration budget.
        for row in &rows {
            assert!(
                (row.accelerated_fidelity - row.mle_fidelity).abs() < 1e-3,
                "accelerated F {} vs classic F {}",
                row.accelerated_fidelity,
                row.mle_fidelity
            );
            assert!(
                row.accelerated_iterations <= row.mle_iterations,
                "accelerated {} vs classic {} iterations at {} shots",
                row.accelerated_iterations,
                row.mle_iterations,
                row.shots_per_setting
            );
        }
    }

    #[test]
    fn window_ablation_shows_capture_tradeoff() {
        let rows = window_ablation(&[500, 8000, 64_000], 93);
        // Wider window captures more of the 1.45-ns envelope…
        assert!(rows[1].coincidence_rate_hz > rows[0].coincidence_rate_hz);
        // …and the widest window must not improve CAR any further
        // (it only adds accidentals).
        assert!(rows[2].car <= rows[1].car * 1.2 + 1.0);
        for r in &rows {
            assert!(r.car > 1.0, "window {}: CAR {}", r.window_ps, r.car);
        }
    }
}
