//! The campaign engine: shard execution with retry/backoff/quarantine,
//! checkpointing, crash injection, resume, and the byte-identity merge.

use std::fs;
use std::path::{Path, PathBuf};

use qfc_faults::{FaultSchedule, QfcError, QfcResult};
use qfc_obs::CampaignSummary;

use crate::checkpoint::{self, LoadOutcome};
use crate::manifest::{CampaignManifest, ShardSpec};
use crate::workload::CampaignWorkload;

/// Execution policy of a campaign run.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Root directory for checkpoints; each campaign uses the
    /// subdirectory named by its fingerprint, so differently-configured
    /// campaigns can never cross-contaminate.
    pub checkpoint_dir: PathBuf,
    /// Attempts per shard before quarantine (≥ 1; a value of 3 means
    /// one try plus two retries).
    pub max_attempts: u32,
    /// Base of the deterministic exponential backoff ladder, s. The
    /// wait recorded before attempt `k` (k ≥ 2) is
    /// `backoff_base_s · 2^(k−2)`, mirroring the supervisor's pump
    /// re-lock ladder; the total after `n` failed attempts is
    /// `backoff_base_s · (2^(n−1) − 1)`.
    pub backoff_base_s: f64,
    /// Soft per-shard deadline, s: an attempt whose wall-clock run time
    /// exceeds it counts as failed and is retried. `None` disables the
    /// deadline. Results stay deterministic either way — a retried
    /// shard recomputes the identical payload — only the retry/backoff
    /// statistics are timing-dependent.
    pub shard_timeout_s: Option<f64>,
    /// Injected campaign faults (shard aborts, executor faults,
    /// checkpoint damage). Physics fault kinds in this schedule are
    /// ignored by the engine — they belong in the workload's own
    /// schedule.
    pub faults: FaultSchedule,
    /// After a successful merge, run the single-process driver and
    /// verify the merged report is byte-identical to it.
    pub prove: bool,
}

impl CampaignOptions {
    /// Defaults: 3 attempts per shard, 50 ms backoff base, no timeout,
    /// no injected faults, no proof.
    pub fn new(checkpoint_dir: impl Into<PathBuf>) -> Self {
        Self {
            checkpoint_dir: checkpoint_dir.into(),
            max_attempts: 3,
            backoff_base_s: 0.05,
            shard_timeout_s: None,
            faults: FaultSchedule::empty(),
            prove: false,
        }
    }
}

/// Recovery bookkeeping of one [`run_campaign`] invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignStats {
    /// Shards in the campaign manifest.
    pub shards_total: usize,
    /// Shards freshly executed (and checkpointed) by this invocation.
    pub shards_completed: usize,
    /// Shards restored from valid checkpoints instead of re-executed.
    pub shards_resumed: usize,
    /// Failed attempts that were retried, across all shards.
    pub retries: u64,
    /// Checkpoints rejected at load (torn write, hash mismatch, stale
    /// fingerprint, misfiled shard).
    pub checkpoints_rejected: usize,
    /// Shards that exhausted the retry budget, sorted by index.
    pub quarantined: Vec<u32>,
    /// Total deterministic backoff recorded across all retries, s.
    pub backoff_s: f64,
}

/// A completed campaign: the merged report, the recovery statistics,
/// and (when requested) the byte-identity proof outcome.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The campaign manifest (shard table + fingerprint).
    pub manifest: CampaignManifest,
    /// The merged full-run report, serialized.
    pub report_json: String,
    /// Recovery bookkeeping for this invocation.
    pub stats: CampaignStats,
    /// `Some(true)` when [`CampaignOptions::prove`] ran and the merged
    /// report matched the single-process run byte for byte; `None` when
    /// no proof was requested.
    pub proof: Option<bool>,
}

/// Outcome of executing one shard on the pool (before checkpointing).
struct ShardExecution {
    retries: u64,
    backoff_s: f64,
    result: QfcResult<String>,
}

/// Runs (or resumes) a campaign: plan → load checkpoints → execute
/// pending shards with retry/backoff → checkpoint → merge → optional
/// byte-identity proof.
///
/// Re-invoking with the same workload and options resumes from whatever
/// checkpoints the previous invocation left behind; a campaign that was
/// interrupted (crash, injected abort, damaged checkpoint) completes on
/// re-run and still merges to the byte-identical report.
///
/// # Errors
///
/// * [`QfcError::CampaignInterrupted`] — an injected [`ShardAbort`]
///   (or checkpoint-damage fault) killed the run mid-campaign;
///   completed shards are checkpointed, re-run to resume.
/// * [`QfcError::ShardsQuarantined`] — shards exhausted the retry
///   budget; completed shards are checkpointed.
/// * [`QfcError::Persistence`] — checkpoint storage failed.
/// * Any workload planning/merge error, passed through.
///
/// [`ShardAbort`]: qfc_faults::FaultKind::ShardAbort
pub fn run_campaign<W: CampaignWorkload + Sync>(
    workload: &W,
    opts: &CampaignOptions,
) -> QfcResult<CampaignOutcome> {
    let shards = workload.plan()?;
    let manifest = CampaignManifest::new(
        &workload.label(),
        workload.seed(),
        &workload.config_json()?,
        shards,
    )?;
    let dir = opts.checkpoint_dir.join(&manifest.campaign_id);
    fs::create_dir_all(&dir)
        .map_err(|e| QfcError::persistence(format!("create {}: {e}", dir.display())))?;
    let manifest_bytes = serde_json::to_string_pretty(&manifest)
        .map_err(|e| QfcError::persistence(format!("manifest serialization: {e}")))?;
    checkpoint::write_atomic(&dir.join("manifest.json"), manifest_bytes.as_bytes())?;

    let mut stats = CampaignStats {
        shards_total: manifest.shards.len(),
        ..CampaignStats::default()
    };

    // Resume: restore valid checkpoints, reject damaged or stale ones.
    let mut payloads: Vec<Option<String>> = vec![None; manifest.shards.len()];
    for (slot, spec) in manifest.shards.iter().enumerate() {
        match checkpoint::load_checkpoint(&dir, &manifest.campaign_id, spec.index) {
            LoadOutcome::Missing => {}
            LoadOutcome::Valid(payload) => {
                payloads[slot] = Some(payload);
                stats.shards_resumed += 1;
            }
            LoadOutcome::Rejected(_reason) => {
                stats.checkpoints_rejected += 1;
                let _ = fs::remove_file(checkpoint::shard_path(&dir, spec.index));
            }
        }
    }

    let pending: Vec<&ShardSpec> = manifest
        .shards
        .iter()
        .filter(|s| payloads[slot_of(s.index)].is_none())
        .collect();

    // Injected mid-flight abort: execute and checkpoint only the shards
    // ordered before the doomed one, then die. The marker file makes the
    // injection one-shot per campaign directory, so the resume survives.
    let abort_at = opts.faults.shard_abort().filter(|&k| {
        pending.iter().any(|s| s.index == k) && !marker_exists(&dir, "aborted", k)
    });
    let runnable: Vec<&ShardSpec> = match abort_at {
        Some(k) => pending.iter().filter(|s| s.index < k).copied().collect(),
        None => pending.clone(),
    };

    // Execute the wave in parallel; each shard is a pure function of its
    // spec, so the pool cannot perturb payload bytes.
    let executions: Vec<ShardExecution> =
        qfc_runtime::par_map(&runnable, |spec| execute_shard(workload, opts, spec));

    // Checkpoint on the driver thread, in shard-index order (`runnable`
    // preserves manifest order), applying injected checkpoint damage.
    for (spec, exec) in runnable.iter().zip(executions) {
        stats.retries += exec.retries;
        stats.backoff_s += exec.backoff_s;
        match exec.result {
            Ok(payload) => {
                checkpoint::write_checkpoint(&dir, &manifest.campaign_id, spec.index, &payload)?;
                if opts.faults.checkpoint_corruption(spec.index)
                    && write_marker_once(&dir, "corrupted", spec.index)?
                {
                    // Torn write at crash time: truncate the checkpoint
                    // mid-record, then die. Resume rejects the fragment
                    // by hash/parse failure and re-runs the shard.
                    truncate_file(&checkpoint::shard_path(&dir, spec.index))?;
                    publish(&manifest, &stats);
                    return Err(interrupted(&payloads, &manifest));
                }
                if opts.faults.checkpoint_stale(spec.index)
                    && write_marker_once(&dir, "stale", spec.index)?
                {
                    // Stale checkpoint: a record from a different
                    // campaign fingerprint landed in this slot (e.g. a
                    // leftover from an older config), then the run died.
                    // Resume rejects it on the fingerprint check.
                    let stale_id = format!("{:016x}", 0u64);
                    checkpoint::write_checkpoint(&dir, &stale_id, spec.index, &payload)?;
                    publish(&manifest, &stats);
                    return Err(interrupted(&payloads, &manifest));
                }
                payloads[slot_of(spec.index)] = Some(payload);
                stats.shards_completed += 1;
            }
            Err(_exhausted) => stats.quarantined.push(spec.index),
        }
    }

    if let Some(k) = abort_at {
        write_marker(&dir, "aborted", k)?;
        publish(&manifest, &stats);
        return Err(interrupted(&payloads, &manifest));
    }

    if !stats.quarantined.is_empty() {
        stats.quarantined.sort_unstable();
        publish(&manifest, &stats);
        return Err(QfcError::ShardsQuarantined {
            shards: stats.quarantined,
        });
    }

    // Merge in shard-index order. Every slot is Some by construction.
    let mut ordered = Vec::with_capacity(payloads.len());
    for (slot, payload) in payloads.into_iter().enumerate() {
        ordered.push(payload.ok_or_else(|| {
            QfcError::persistence(format!("shard slot {slot} empty after a full wave"))
        })?);
    }
    let report_json = workload.merge(&ordered)?;

    let proof = if opts.prove {
        Some(workload.reference_json()? == report_json)
    } else {
        None
    };

    publish(&manifest, &stats);
    Ok(CampaignOutcome {
        manifest,
        report_json,
        stats,
        proof,
    })
}

/// Executes one shard with the bounded retry / deterministic backoff
/// ladder. Injected executor faults consume the leading attempts;
/// exhaustion returns the last error for quarantine.
fn execute_shard<W: CampaignWorkload + Sync>(
    workload: &W,
    opts: &CampaignOptions,
    spec: &ShardSpec,
) -> ShardExecution {
    let budget = opts.max_attempts.max(1);
    let injected_failures = opts.faults.shard_executor_failures(spec.index);
    let mut retries = 0u64;
    let mut backoff_s = 0.0f64;
    let mut last_err = QfcError::persistence(format!("shard {} never attempted", spec.index));
    for attempt in 1..=budget {
        if attempt > 1 {
            // Deterministic exponential ladder, mirroring the
            // supervisor's pump re-lock backoff (base · 2^(k−2) before
            // attempt k). Recorded, not slept: the budget is virtual.
            backoff_s += opts.backoff_base_s * f64::from(1u32 << (attempt - 2).min(20));
            retries += 1;
        }
        let outcome = if attempt <= injected_failures {
            Err(QfcError::persistence(format!(
                "injected executor fault: shard {} attempt {attempt}",
                spec.index
            )))
        } else {
            run_attempt(workload, opts, spec)
        };
        match outcome {
            Ok(payload) => {
                return ShardExecution {
                    retries,
                    backoff_s,
                    result: Ok(payload),
                }
            }
            Err(e) => last_err = e,
        }
    }
    ShardExecution {
        retries,
        backoff_s,
        result: Err(last_err),
    }
}

/// One shard attempt, with the soft wall-clock deadline applied.
fn run_attempt<W: CampaignWorkload + Sync>(
    workload: &W,
    opts: &CampaignOptions,
    spec: &ShardSpec,
) -> QfcResult<String> {
    let started = opts
        .shard_timeout_s
        .map(|_| std::time::Instant::now()); // qfc-lint: allow(determinism) — operational shard deadline; payloads are deterministic, only retry stats depend on timing
    let payload = workload.run_shard(spec)?;
    if let (Some(limit), Some(t0)) = (opts.shard_timeout_s, started) {
        let elapsed = t0.elapsed().as_secs_f64();
        if elapsed > limit {
            return Err(QfcError::persistence(format!(
                "shard {} exceeded its {limit} s deadline ({elapsed:.3} s)",
                spec.index
            )));
        }
    }
    Ok(payload)
}

/// Payload slot for a shard index (the manifest is contiguous from 0).
fn slot_of(index: u32) -> usize {
    usize::try_from(index).unwrap_or(usize::MAX)
}

fn interrupted(payloads: &[Option<String>], manifest: &CampaignManifest) -> QfcError {
    QfcError::CampaignInterrupted {
        completed_shards: payloads.iter().flatten().count(),
        total_shards: manifest.shards.len(),
    }
}

fn marker_path(dir: &Path, kind: &str, index: u32) -> PathBuf {
    dir.join(format!("{kind}-shard-{index:04}"))
}

fn marker_exists(dir: &Path, kind: &str, index: u32) -> bool {
    marker_path(dir, kind, index).exists()
}

/// Writes a fault marker; returns `false` when it already existed (the
/// injection already fired on a previous invocation).
fn write_marker_once(dir: &Path, kind: &str, index: u32) -> QfcResult<bool> {
    if marker_exists(dir, kind, index) {
        return Ok(false);
    }
    write_marker(dir, kind, index)?;
    Ok(true)
}

fn write_marker(dir: &Path, kind: &str, index: u32) -> QfcResult<()> {
    let path = marker_path(dir, kind, index);
    fs::write(&path, b"injected campaign fault fired here\n")
        .map_err(|e| QfcError::persistence(format!("write {}: {e}", path.display())))
}

/// Truncates a file to half its length — an injected torn write.
fn truncate_file(path: &Path) -> QfcResult<()> {
    let bytes =
        fs::read(path).map_err(|e| QfcError::persistence(format!("read {}: {e}", path.display())))?;
    fs::write(path, &bytes[..bytes.len() / 2])
        .map_err(|e| QfcError::persistence(format!("truncate {}: {e}", path.display())))
}

/// Publishes recovery telemetry: `campaign_*` counters plus the
/// [`CampaignSummary`] block on the current run manifest. No-op without
/// an installed collector.
fn publish(manifest: &CampaignManifest, stats: &CampaignStats) {
    if !qfc_obs::enabled() {
        return;
    }
    qfc_obs::counter_add(
        "campaign_shards_completed",
        qfc_mathkit::cast::usize_to_u64(stats.shards_completed),
    );
    qfc_obs::counter_add(
        "campaign_shards_resumed",
        qfc_mathkit::cast::usize_to_u64(stats.shards_resumed),
    );
    qfc_obs::counter_add("campaign_retries", stats.retries);
    qfc_obs::counter_add(
        "campaign_quarantines",
        qfc_mathkit::cast::usize_to_u64(stats.quarantined.len()),
    );
    qfc_obs::counter_add(
        "campaign_checkpoints_rejected",
        qfc_mathkit::cast::usize_to_u64(stats.checkpoints_rejected),
    );
    if let Some(mut m) = qfc_obs::current_manifest() {
        m.campaign = Some(CampaignSummary {
            campaign_id: manifest.campaign_id.clone(),
            shards_total: stats.shards_total,
            shards_resumed: stats.shards_resumed,
            retries: stats.retries,
            quarantined: stats.quarantined.len(),
            checkpoints_rejected: stats.checkpoints_rejected,
        });
        qfc_obs::set_manifest(m);
    }
}
