//! Jones calculus: polarization states and optics for the §III
//! cross-polarized pair experiment (polarizing beam splitter, waveplates,
//! rotatable polarizer — the elements between the chip and the
//! detectors).

use serde::{Deserialize, Serialize};

use qfc_mathkit::cmatrix::CMatrix;
use qfc_mathkit::complex::{Complex64, C_ONE, C_ZERO};
use qfc_mathkit::cvector::CVector;

use crate::waveguide::Polarization;

/// A (normalized) Jones polarization state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JonesVector {
    amps: CVector,
}

impl JonesVector {
    /// Horizontal polarization `(1, 0)` — the chip's TE mode after
    /// collection.
    pub fn horizontal() -> Self {
        Self {
            amps: CVector::from_real(&[1.0, 0.0]),
        }
    }

    /// Vertical polarization `(0, 1)` — the TM mode.
    pub fn vertical() -> Self {
        Self {
            amps: CVector::from_real(&[0.0, 1.0]),
        }
    }

    /// Linear polarization at angle `θ` from horizontal.
    pub fn linear(theta: f64) -> Self {
        Self {
            amps: CVector::from_real(&[theta.cos(), theta.sin()]),
        }
    }

    /// Right-circular polarization `(1, −i)/√2`.
    pub fn right_circular() -> Self {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        Self {
            amps: CVector::from_vec(vec![Complex64::real(s), Complex64::new(0.0, -s)]),
        }
    }

    /// The Jones state of a waveguide polarization mode.
    pub fn from_mode(pol: Polarization) -> Self {
        match pol {
            Polarization::Te => Self::horizontal(),
            Polarization::Tm => Self::vertical(),
        }
    }

    /// Builds from raw amplitudes, normalizing.
    ///
    /// # Panics
    ///
    /// Panics on a zero vector.
    pub fn from_amplitudes(x: Complex64, y: Complex64) -> Self {
        let v = CVector::from_vec(vec![x, y]);
        assert!(v.norm() > 0.0, "zero Jones vector");
        Self {
            amps: v.normalized(),
        }
    }

    /// Amplitudes `(E_x, E_y)`.
    pub fn amplitudes(&self) -> (Complex64, Complex64) {
        (self.amps[0], self.amps[1])
    }

    /// Intensity transmitted through an optical element (the squared
    /// norm after applying a possibly lossy Jones matrix).
    ///
    /// Allocation-free: folds `‖M·a‖²` row by row with `matvec`'s exact
    /// per-row accumulation order, so the value is bit-identical to the
    /// former `matvec(..).norm_sqr()` without the temporary vector —
    /// this sits inside per-sample polarization sweeps.
    pub fn intensity_after(&self, element: &JonesMatrix) -> f64 {
        let m = &element.matrix;
        let mut acc = 0.0;
        // qfc-lint: hot
        for i in 0..m.rows() {
            let mut z = C_ZERO;
            for j in 0..m.cols() {
                z += m[(i, j)] * self.amps[j];
            }
            acc += z.norm_sqr();
        }
        acc
    }

    /// Squared overlap with another polarization state.
    pub fn overlap(&self, other: &Self) -> f64 {
        self.amps.dot(&other.amps).norm_sqr()
    }
}

/// A 2×2 Jones matrix (possibly non-unitary, e.g. a polarizer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JonesMatrix {
    matrix: CMatrix,
}

impl JonesMatrix {
    /// Ideal linear polarizer at angle `θ` from horizontal.
    pub fn polarizer(theta: f64) -> Self {
        let (c, s) = (theta.cos(), theta.sin());
        Self {
            matrix: CMatrix::from_real_rows(&[&[c * c, c * s], &[c * s, s * s]]),
        }
    }

    /// Half-wave plate with fast axis at `θ`.
    pub fn half_wave_plate(theta: f64) -> Self {
        let (c, s) = ((2.0 * theta).cos(), (2.0 * theta).sin());
        Self {
            matrix: CMatrix::from_real_rows(&[&[c, s], &[s, -c]]),
        }
    }

    /// Quarter-wave plate with fast axis at `θ`.
    pub fn quarter_wave_plate(theta: f64) -> Self {
        let (c, s) = (theta.cos(), theta.sin());
        let i = Complex64::new(0.0, 1.0);
        // R(θ)·diag(1, i)·R(−θ).
        let m = CMatrix::from_vec(
            2,
            2,
            vec![
                C_ONE * (c * c) + i * (s * s),
                (C_ONE - i) * (c * s),
                (C_ONE - i) * (c * s),
                C_ONE * (s * s) + i * (c * c),
            ],
        );
        Self { matrix: m }
    }

    /// Free propagation with a relative phase `φ` on the vertical
    /// component (a birefringent element).
    pub fn retarder(phi: f64) -> Self {
        Self {
            matrix: CMatrix::diag(&[C_ONE, Complex64::cis(phi)]),
        }
    }

    /// Chains two elements: light passes `self` then `next`.
    pub fn then(&self, next: &JonesMatrix) -> Self {
        Self {
            matrix: &next.matrix * &self.matrix,
        }
    }

    /// The underlying matrix.
    pub fn as_matrix(&self) -> &CMatrix {
        &self.matrix
    }
}

/// An ideal polarizing beam splitter: transmits horizontal, reflects
/// vertical. Returns the (transmitted, reflected) intensities for an
/// input state.
pub fn pbs_split(state: &JonesVector) -> (f64, f64) {
    let (x, y) = state.amplitudes();
    (x.norm_sqr(), y.norm_sqr())
}

/// A PBS with finite extinction: a fraction `leakage` of each output's
/// power appears at the wrong port.
pub fn pbs_split_with_leakage(state: &JonesVector, leakage: f64) -> (f64, f64) {
    assert!((0.0..=0.5).contains(&leakage), "leakage must be in [0, 0.5]");
    let (t, r) = pbs_split(state);
    (
        t * (1.0 - leakage) + r * leakage,
        r * (1.0 - leakage) + t * leakage,
    )
}

/// Degree of polarization-basis correlation of the §III pair: the
/// probability that signal and idler exit *opposite* PBS ports minus the
/// probability they exit the same port, for ideal H/V inputs.
pub fn crosspol_correlation(leakage: f64) -> f64 {
    let h = JonesVector::horizontal();
    let v = JonesVector::vertical();
    let (ht, hr) = pbs_split_with_leakage(&h, leakage);
    let (vt, vr) = pbs_split_with_leakage(&v, leakage);
    let opposite = ht * vr + hr * vt;
    let same = ht * vt + hr * vr;
    opposite - same
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfc_mathkit::complex::C_ZERO;

    const TOL: f64 = 1e-12;

    #[test]
    fn malus_law() {
        let h = JonesVector::horizontal();
        for theta in [0.0, 0.3, std::f64::consts::FRAC_PI_4, 1.2] {
            let i = h.intensity_after(&JonesMatrix::polarizer(theta));
            assert!((i - theta.cos().powi(2)).abs() < TOL, "θ = {theta}");
        }
    }

    #[test]
    fn hwp_rotates_polarization() {
        // HWP at 45° maps H → V.
        let out_int = JonesVector::horizontal()
            .intensity_after(&JonesMatrix::half_wave_plate(std::f64::consts::FRAC_PI_4)
                .then(&JonesMatrix::polarizer(std::f64::consts::FRAC_PI_2)));
        assert!((out_int - 1.0).abs() < TOL);
    }

    #[test]
    fn qwp_makes_circular_from_diagonal() {
        // Diagonal light through a QWP at 0° becomes circular: equal
        // intensity through any polarizer.
        let d = JonesVector::linear(std::f64::consts::FRAC_PI_4);
        let qwp = JonesMatrix::quarter_wave_plate(0.0);
        for theta in [0.0, 0.5, 1.0, 1.5] {
            let i = d.intensity_after(&qwp.then(&JonesMatrix::polarizer(theta)));
            assert!((i - 0.5).abs() < 1e-9, "θ = {theta}: {i}");
        }
    }

    #[test]
    fn circular_state_overlap() {
        let r = JonesVector::right_circular();
        assert!((r.overlap(&JonesVector::horizontal()) - 0.5).abs() < TOL);
        assert!((r.overlap(&r) - 1.0).abs() < TOL);
    }

    #[test]
    fn pbs_routes_h_and_v() {
        assert_eq!(pbs_split(&JonesVector::horizontal()), (1.0, 0.0));
        assert_eq!(pbs_split(&JonesVector::vertical()), (0.0, 1.0));
        let d = pbs_split(&JonesVector::linear(std::f64::consts::FRAC_PI_4));
        assert!((d.0 - 0.5).abs() < TOL && (d.1 - 0.5).abs() < TOL);
    }

    #[test]
    fn leakage_degrades_correlation() {
        assert!((crosspol_correlation(0.0) - 1.0).abs() < TOL);
        let c = crosspol_correlation(0.01);
        assert!(c < 1.0 && c > 0.95, "C = {c}");
        // Total depolarization of routing at 50 % leakage.
        assert!(crosspol_correlation(0.5).abs() < TOL);
    }

    #[test]
    fn mode_mapping() {
        assert_eq!(JonesVector::from_mode(Polarization::Te), JonesVector::horizontal());
        assert_eq!(JonesVector::from_mode(Polarization::Tm), JonesVector::vertical());
    }

    #[test]
    fn retarder_preserves_intensity() {
        let d = JonesVector::linear(0.9);
        let ret = JonesMatrix::retarder(1.2);
        assert!((d.intensity_after(&ret) - 1.0).abs() < TOL);
    }

    #[test]
    #[should_panic(expected = "zero Jones vector")]
    fn zero_vector_rejected() {
        let _ = JonesVector::from_amplitudes(C_ZERO, C_ZERO);
    }
}
