//! §IV — Multiplexed time-bin entanglement: interference fringes (F7)
//! and CHSH violation on all five channel pairs (T2).
//!
//! ```sh
//! cargo run --release --example timebin_entanglement
//! ```

use qfc::core::source::QfcSource;
use qfc::core::timebin::{run_timebin_event_mc, run_timebin_experiment, TimeBinConfig};
use qfc::quantum::chsh::TSIRELSON_BOUND;

fn main() {
    let source = QfcSource::paper_device_timebin();
    let config = TimeBinConfig::paper();
    println!(
        "Running §IV double-pulse pumping, {} channels, {} phase points…",
        config.channels, config.phase_steps
    );
    let report = run_timebin_experiment(&source, &config, 23);

    println!("\n== F7 two-photon interference fringes ==");
    for f in &report.fringes {
        println!(
            "channel {}: fitted visibility {:.1} % (state model {:.1} %)",
            f.m,
            f.fit.visibility * 100.0,
            f.state_visibility * 100.0
        );
    }
    println!(
        "mean raw visibility: {:.1} % (paper: 83 %)",
        report.mean_visibility() * 100.0
    );

    // ASCII fringe of channel 1.
    println!("\nchannel-1 fringe (counts vs analyzer phase):");
    let f1 = &report.fringes[0];
    let max = f1.points.iter().map(|p| p.1).max().unwrap_or(1).max(1);
    for &(phi, c) in &f1.points {
        let bar = "#".repeat((c * 50 / max) as usize);
        println!("  φ={phi:>5.2}  {c:>7}  {bar}");
    }

    println!("\n== T2 CHSH on every channel pair ==");
    println!("  m     S value     σ       violation");
    for c in &report.chsh {
        println!(
            " {:>2}    {:>6.3}    {:>6.3}    {:>5.1} σ above the classical bound",
            c.m, c.s_value, c.sigma, c.n_sigma_violation
        );
    }
    println!(
        "{} of {} channels violate CHSH (Tsirelson bound: {:.3})",
        report.channels_violating(),
        report.chsh.len(),
        TSIRELSON_BOUND
    );

    println!("\n== Event-based Monte Carlo: joint arrival-slot table ==");
    println!("(channel 1, constructive vs destructive analyzer phase)\n");
    let scan = run_timebin_event_mc(&source, &config, 1, &[0.0, std::f64::consts::PI], 99);
    for p in &scan {
        println!("analyzer phase φ = {:.2}:", p.phase);
        println!("            B:first  B:middle  B:last");
        let labels = ["A:first ", "A:middle", "A:last  "];
        for (i, row) in p.slots.iter().enumerate() {
            println!(
                "  {}  {:>7}  {:>8}  {:>6}",
                labels[i], row[0], row[1], row[2]
            );
        }
        println!(
            "  middle/middle (interfering): {}   satellites (phase-blind): {}\n",
            p.middle_middle(),
            p.satellites()
        );
    }

    println!("{}", report.to_report().render());
}
