//! §III — Cross-polarized photon pairs via type-II SFWM, plus the OPO
//! power transfer curve (F4/F5/F6).
//!
//! ```sh
//! cargo run --release --example crosspol_opo
//! ```

use qfc::core::crosspol::{
    run_crosspol_experiment, run_power_sweep, run_suppression_sweep, CrossPolConfig,
};
use qfc::core::source::QfcSource;

fn main() {
    let source = QfcSource::paper_device_type2();
    println!("Running §III bichromatic TE+TM pumping at 2 mW total…");

    println!("\n== F4 type-II coincidence measurement ==");
    let report = run_crosspol_experiment(&source, &CrossPolConfig::paper(), 17);
    println!("generated pair rate : {:.2} Hz", report.generated_pair_rate_hz);
    println!("TE singles          : {:.0} Hz", report.te_singles_hz);
    println!("TM singles          : {:.0} Hz", report.tm_singles_hz);
    println!("coincidence rate    : {:.4} Hz", report.coincidence_rate_hz);
    println!("CAR                 : {:.1}  (paper: ~10 at 2 mW)", report.car);
    println!(
        "stimulated response : {:.2e}  (1 = unsuppressed)",
        report.stimulated_response
    );

    println!("\n== F5 OPO power transfer ==");
    let sweep = run_power_sweep(&source, 16);
    println!(
        "threshold          : {:.1} mW (paper: 14 mW)",
        sweep.threshold_w * 1e3
    );
    println!(
        "below-threshold    : P_out ∝ P^{:.2}  (paper: quadratic)",
        sweep.below_exponent
    );
    println!(
        "above-threshold    : P_out ∝ (P−P_th)^{:.2}  (paper: linear)",
        sweep.above_exponent
    );
    println!("curve (pump mW → output):");
    for (p, o) in sweep.curve.iter().step_by(4) {
        println!("  {:>6.2} mW → {:>10.3e} W", p * 1e3, o);
    }

    println!("\n== F6 stimulated-FWM suppression vs TE/TM offset ==");
    let offsets = [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 47.0];
    println!("offset (GHz)   stimulated response   spontaneous rate (Hz)");
    for p in run_suppression_sweep(&offsets) {
        println!(
            "  {:>7.1}        {:>12.3e}         {:>8.3}",
            p.offset_hz / 1e9,
            p.stimulated_response,
            p.spontaneous_rate_hz
        );
    }

    println!("\n{}", report.to_report().render());
    println!("{}", sweep.to_report().render());
}
