//! Random-variate generation for Monte-Carlo photon-event simulation.
//!
//! Only the `rand` core RNG is taken as a dependency; the distributions
//! themselves (normal, Poisson, binomial, exponential) are implemented here
//! so the workspace stays within its approved dependency set.

use crate::cast;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// Every experiment in the workspace threads an explicit seed through this
/// function so that all published numbers are bit-for-bit reproducible.
///
/// ```
/// use qfc_mathkit::rng::rng_from_seed;
/// use rand::Rng;
/// let mut a = rng_from_seed(7);
/// let mut b = rng_from_seed(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// SplitMix64 finalizer: a bijective avalanche mix of a 64-bit word.
#[inline]
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent child seed for shard `shard_id` of a
/// computation rooted at `seed`.
///
/// This is the counter-based splitting scheme behind the deterministic
/// parallel engine: every shard of a sharded Monte-Carlo run draws its
/// variates from `rng_from_seed(split_seed(seed, shard_id))`, so results
/// depend only on the (seed, shard) pair — never on how shards are
/// scheduled across worker threads. Two SplitMix64 finalizer rounds over
/// the golden-ratio-weighted counter give sibling streams that are
/// statistically independent of each other and of the parent stream.
///
/// ```
/// use qfc_mathkit::rng::split_seed;
/// assert_eq!(split_seed(7, 3), split_seed(7, 3));
/// assert_ne!(split_seed(7, 3), split_seed(7, 4));
/// assert_ne!(split_seed(7, 3), split_seed(8, 3));
/// ```
#[inline]
pub fn split_seed(seed: u64, shard_id: u64) -> u64 {
    let counter = seed
        .wrapping_add(shard_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0xD1B5_4A32_D192_ED03);
    splitmix64_mix(splitmix64_mix(counter))
}

/// Draws a Bernoulli variate with success probability `p` (clamped to
/// `[0, 1]`).
#[inline]
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    rng.gen::<f64>() < p
}

/// Draws a standard normal variate via the Marsaglia polar method.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.gen::<f64>() - 1.0;
        let v = 2.0 * rng.gen::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws a normal variate with mean `mu` and standard deviation `sigma`.
///
/// # Panics
///
/// Panics if `sigma < 0`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "normal: sigma must be non-negative");
    mu + sigma * standard_normal(rng)
}

/// Draws an exponential variate with the given `rate` (mean `1/rate`).
///
/// # Panics
///
/// Panics if `rate <= 0`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential: rate must be positive");
    // 1 − U avoids ln(0).
    -(1.0 - rng.gen::<f64>()).ln() / rate
}

/// Draws a Poisson variate with mean `lambda`.
///
/// Uses Knuth's product method for small means and a clipped
/// normal approximation (with continuity correction) for `lambda > 30`,
/// which is accurate to well below the statistical noise of any experiment
/// in this workspace.
///
/// # Panics
///
/// Panics if `lambda < 0` or is not finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "poisson: lambda must be finite and non-negative"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda <= 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = normal(rng, lambda, lambda.sqrt());
        cast::f64_to_u64((x + 0.5).max(0.0))
    }
}

/// Draws a binomial variate `Bin(n, p)`.
///
/// Dispatches on the regime: direct Bernoulli summation for small `n`;
/// Poisson limit for huge `n` with a small mean (the photon-counting
/// regime — `n` frames with a tiny per-frame probability); normal
/// approximation with continuity correction otherwise.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let p = p.clamp(0.0, 1.0);
    if p == 0.0 || n == 0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    let mean = cast::to_f64(n) * p;
    let var = mean * (1.0 - p);
    if n <= 1024 {
        cast::usize_to_u64((0..n).filter(|_| rng.gen::<f64>() < p).count())
    } else if p < 0.01 {
        // Poisson limit: exact to O(p) for small p regardless of n.
        poisson(rng, mean).min(n)
    } else if var >= 25.0 {
        let x = normal(rng, mean, var.sqrt());
        cast::f64_to_u64((x + 0.5).clamp(0.0, cast::to_f64(n)))
    } else {
        // Moderate n with p near 0 or 1 but var small: sample the minority
        // outcome via the Poisson limit on the cheaper side.
        if p <= 0.5 {
            poisson(rng, mean).min(n)
        } else {
            n - poisson(rng, cast::to_f64(n) * (1.0 - p)).min(n)
        }
    }
}

/// Draws a geometric variate: the number of failures before the first
/// success, with success probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]`.
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "geometric: p must be in (0, 1]");
    if p == 1.0 {
        return 0;
    }
    let u = 1.0 - rng.gen::<f64>();
    cast::f64_to_u64((u.ln() / (1.0 - p).ln()).floor())
}

/// Samples an index from a discrete distribution given by non-negative
/// `weights` (need not be normalized).
///
/// # Panics
///
/// Panics if all weights are zero or any is negative.
pub fn discrete<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights
        .iter()
        .inspect(|&&w| assert!(w >= 0.0, "discrete: negative weight"))
        .sum();
    assert!(total > 0.0, "discrete: all weights zero");
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = rng_from_seed(123);
        let mut b = rng_from_seed(123);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = rng_from_seed(1);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut rng = rng_from_seed(2);
        let n = 100_000;
        let lam = 3.7;
        let xs: Vec<u64> = (0..n).map(|_| poisson(&mut rng, lam)).collect();
        let mean = xs.iter().sum::<u64>() as f64 / n as f64;
        let var = xs
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - lam).abs() < 0.05, "mean {mean}");
        assert!((var - lam).abs() < 0.15, "var {var}");
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut rng = rng_from_seed(3);
        let n = 50_000;
        let lam = 250.0;
        let xs: Vec<u64> = (0..n).map(|_| poisson(&mut rng, lam)).collect();
        let mean = xs.iter().sum::<u64>() as f64 / n as f64;
        assert!((mean - lam).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero() {
        let mut rng = rng_from_seed(4);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = rng_from_seed(5);
        let n = 100_000;
        let rate = 4.0;
        let mean = (0..n)
            .map(|_| exponential(&mut rng, rate))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = rng_from_seed(6);
        assert_eq!(binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(binomial(&mut rng, 10, 1.0), 10);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
    }

    #[test]
    fn binomial_moments_small_and_large() {
        let mut rng = rng_from_seed(7);
        let n_trials = 20_000;
        for &(n, p) in &[(50u64, 0.3), (10_000u64, 0.4)] {
            let mean = (0..n_trials)
                .map(|_| binomial(&mut rng, n, p))
                .sum::<u64>() as f64
                / n_trials as f64;
            let expect = n as f64 * p;
            assert!(
                (mean - expect).abs() / expect < 0.02,
                "mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = rng_from_seed(8);
        assert!(!bernoulli(&mut rng, 0.0));
        assert!(bernoulli(&mut rng, 1.0));
        assert!(!bernoulli(&mut rng, -0.3));
        assert!(bernoulli(&mut rng, 1.7));
    }

    #[test]
    fn geometric_mean() {
        let mut rng = rng_from_seed(9);
        let p = 0.25;
        let n = 100_000;
        let mean = (0..n).map(|_| geometric(&mut rng, p)).sum::<u64>() as f64 / n as f64;
        // E[failures before success] = (1 − p)/p = 3.
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn discrete_respects_weights() {
        let mut rng = rng_from_seed(10);
        let w = [1.0, 0.0, 3.0];
        let n = 100_000;
        let mut counts = [0u64; 3];
        for _ in 0..n {
            counts[discrete(&mut rng, &w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac2 = counts[2] as f64 / n as f64;
        assert!((frac2 - 0.75).abs() < 0.01, "frac {frac2}");
    }

    #[test]
    #[should_panic(expected = "all weights zero")]
    fn discrete_rejects_zero_weights() {
        let mut rng = rng_from_seed(11);
        let _ = discrete(&mut rng, &[0.0, 0.0]);
    }

    #[test]
    fn split_seed_is_deterministic_and_collision_free() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..64u64 {
            for shard in 0..64u64 {
                assert_eq!(split_seed(seed, shard), split_seed(seed, shard));
                assert!(
                    seen.insert(split_seed(seed, shard)),
                    "collision at seed {seed} shard {shard}"
                );
            }
        }
    }

    #[test]
    fn sibling_streams_pass_moment_checks() {
        // Each shard stream must itself look uniform: mean 1/2,
        // variance 1/12 for U(0,1).
        let n = 50_000;
        for shard in 0..8u64 {
            let mut rng = rng_from_seed(split_seed(42, shard));
            let xs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            assert!((mean - 0.5).abs() < 0.01, "shard {shard} mean {mean}");
            assert!(
                (var - 1.0 / 12.0).abs() < 0.005,
                "shard {shard} var {var}"
            );
        }
    }

    #[test]
    fn sibling_streams_are_uncorrelated() {
        // Pearson correlation between adjacent-shard streams and between
        // each shard stream and the parent stream must be ~0.
        let n = 50_000;
        let draw = |seed: u64| -> Vec<f64> {
            let mut rng = rng_from_seed(seed);
            (0..n).map(|_| rng.gen::<f64>()).collect()
        };
        let correlation = |a: &[f64], b: &[f64]| -> f64 {
            let ma = a.iter().sum::<f64>() / a.len() as f64;
            let mb = b.iter().sum::<f64>() / b.len() as f64;
            let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
            let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
            let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
            cov / (va * vb).sqrt()
        };
        let parent = draw(42);
        let shards: Vec<Vec<f64>> = (0..6).map(|s| draw(split_seed(42, s))).collect();
        // ~3 sigma for n = 50_000 independent samples is ~0.013; use a
        // comfortable 0.02 bound.
        for (s, stream) in shards.iter().enumerate() {
            let r = correlation(&parent, stream);
            assert!(r.abs() < 0.02, "parent vs shard {s}: r = {r}");
        }
        for pair in shards.windows(2) {
            let r = correlation(&pair[0], &pair[1]);
            assert!(r.abs() < 0.02, "adjacent shards: r = {r}");
        }
    }

    #[test]
    fn split_seed_differs_from_parent_stream() {
        // A shard stream must not alias the parent stream shifted by a
        // few draws (the classic `seed + shard` mistake).
        for shard in 0..4u64 {
            let mut parent = rng_from_seed(42);
            let mut child = rng_from_seed(split_seed(42, shard));
            let child_first = child.gen::<u64>();
            let aliased = (0..16).any(|_| parent.gen::<u64>() == child_first);
            assert!(!aliased, "shard {shard} aliases the parent stream");
        }
    }
}
