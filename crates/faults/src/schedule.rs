//! Deterministic, seeded, composable fault schedules.
//!
//! A [`FaultSchedule`] is pure data: a list of [`FaultEvent`]s, each a
//! time window plus a [`FaultKind`]. Experiment drivers *query* the
//! schedule (rate factors, dead fractions, phase offsets, …) — they never
//! mutate it — so an empty schedule has **zero observable effect** on a
//! run, and a non-empty schedule perturbs a run identically at any
//! thread count (all queries are pure functions of `(schedule, window)`,
//! and any randomness a driver needs to *realize* a fault comes from a
//! dedicated split-seed domain that is never drawn from when the
//! schedule is empty).

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_mathkit::rng::split_seed;

/// Which arm of a channel pair a detector fault hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arm {
    /// Signal arm (TE arm in the cross-polarized experiment).
    Signal,
    /// Idler arm (TM arm in the cross-polarized experiment).
    Idler,
}

/// The failure modes a deployed quantum frequency comb actually sees:
/// detector faults, pump faults, thermal drift, interferometer phase
/// noise, and acquisition-electronics saturation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// One arm's detector goes dead (bias trip, gate dropout): no clicks
    /// — real or dark — while active.
    DetectorDropout {
        /// Channel-pair index hit (1-based, as in the drivers).
        channel: u32,
        /// Which arm.
        arm: Arm,
    },
    /// A dark-count burst (afterpulsing avalanche, stray light): the
    /// dark-count rate is multiplied while active.
    DarkCountBurst {
        /// Channel hit, or `None` for every channel.
        channel: Option<u32>,
        /// Multiplier on the dark-count rate (≥ 1 for a burst).
        rate_multiplier: f64,
    },
    /// The pump power steps to `factor` × nominal while active
    /// (pair rates scale as `factor²`).
    PumpPowerStep {
        /// Pump power factor (> 0; 1 = nominal).
        factor: f64,
    },
    /// The self-locked pump drops out of resonance: no pairs are
    /// generated from the event start until the supervisor re-locks.
    PumpLockLoss,
    /// Thermal detuning ramp: the pump-resonance detuning rises
    /// triangularly to `peak_hz` at the window midpoint and back.
    ThermalDetuning {
        /// Peak detuning, Hz.
        peak_hz: f64,
    },
    /// An interferometer phase jump of `rad` while active (fiber stress,
    /// stabilization glitch).
    PhaseJump {
        /// Phase offset, rad.
        rad: f64,
    },
    /// The time-to-digital converter saturates: at most `max_rate_hz`
    /// tags per second survive on each arm while active.
    TdcSaturation {
        /// Maximum sustained tag rate, Hz.
        max_rate_hz: f64,
    },
    /// Campaign-level crash injection: the acquisition process dies while
    /// the named shard is in flight. Shards that completed before it keep
    /// their checkpoints; the run reports
    /// `QfcError::CampaignInterrupted` and must be resumed. Queried by
    /// the campaign engine only — every physics query ignores it, and the
    /// event's time window is ignored (campaign faults are keyed by
    /// shard, not by run time).
    ShardAbort {
        /// Shard index (0-based, as in the campaign manifest).
        shard: u32,
    },
    /// Campaign-level executor fault: the named shard's first `failures`
    /// execution attempts fail (node loss, OOM kill), exercising the
    /// retry/backoff path. `failures >= max_attempts` exhausts the retry
    /// budget and quarantines the shard. Physics queries ignore it.
    ShardExecutorFault {
        /// Shard index (0-based).
        shard: u32,
        /// Number of leading attempts that fail.
        failures: u32,
    },
    /// Campaign-level storage fault: the named shard's checkpoint bytes
    /// are corrupted after the first successful write (torn write, bit
    /// rot). Resume must detect the bad content hash, reject the
    /// checkpoint, and recompute the shard. Physics queries ignore it.
    CheckpointCorruption {
        /// Shard index (0-based).
        shard: u32,
    },
    /// Campaign-level storage fault: the named shard's checkpoint is
    /// replaced by one carrying a mismatched campaign fingerprint (a
    /// stale leftover from a different config or seed). Resume must
    /// reject it and recompute the shard. Physics queries ignore it.
    CheckpointStale {
        /// Shard index (0-based).
        shard: u32,
    },
}

impl FaultKind {
    /// Short human-readable label for health reporting.
    pub fn label(&self) -> String {
        match self {
            Self::DetectorDropout { channel, arm } => {
                format!("detector dropout (ch {channel}, {arm:?} arm)")
            }
            Self::DarkCountBurst {
                channel,
                rate_multiplier,
            } => match channel {
                Some(c) => format!("dark-count burst ×{rate_multiplier:.2} (ch {c})"),
                None => format!("dark-count burst ×{rate_multiplier:.2} (all channels)"),
            },
            Self::PumpPowerStep { factor } => format!("pump power step ×{factor:.3}"),
            Self::PumpLockLoss => "pump lock loss".to_owned(),
            Self::ThermalDetuning { peak_hz } => {
                format!("thermal detuning ramp to {:.1} MHz", peak_hz / 1e6)
            }
            Self::PhaseJump { rad } => format!("interferometer phase jump {rad:.3} rad"),
            Self::TdcSaturation { max_rate_hz } => {
                format!("TDC saturation at {max_rate_hz:.0} Hz")
            }
            Self::ShardAbort { shard } => format!("shard {shard} aborted mid-flight"),
            Self::ShardExecutorFault { shard, failures } => {
                format!("shard {shard} executor fault ({failures} failed attempts)")
            }
            Self::CheckpointCorruption { shard } => {
                format!("shard {shard} checkpoint corrupted")
            }
            Self::CheckpointStale { shard } => format!("shard {shard} checkpoint stale"),
        }
    }

    /// `true` for the campaign-level fault kinds (shard crashes and
    /// checkpoint storage faults), which every physics query ignores.
    pub fn is_campaign(&self) -> bool {
        matches!(
            self,
            Self::ShardAbort { .. }
                | Self::ShardExecutorFault { .. }
                | Self::CheckpointCorruption { .. }
                | Self::CheckpointStale { .. }
        )
    }
}

/// One fault: a kind active over `[start_s, start_s + duration_s)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Window start, s into the run.
    pub start_s: f64,
    /// Window length, s.
    pub duration_s: f64,
    /// What fails.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Creates an event.
    pub fn new(start_s: f64, duration_s: f64, kind: FaultKind) -> Self {
        Self {
            start_s,
            duration_s,
            kind,
        }
    }

    /// Window end, s.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }

    /// `true` when the event is active at time `t_s`.
    pub fn active_at(&self, t_s: f64) -> bool {
        t_s >= self.start_s && t_s < self.end_s()
    }

    /// Overlap of the event window with `[t0, t1)`, s.
    pub fn overlap_s(&self, t0: f64, t1: f64) -> f64 {
        (self.end_s().min(t1) - self.start_s.max(t0)).max(0.0)
    }

    /// Fractional progress through the event window at `t_s`, in `[0, 1]`.
    fn progress(&self, t_s: f64) -> f64 {
        if self.duration_s <= 0.0 {
            return 0.0;
        }
        ((t_s - self.start_s) / self.duration_s).clamp(0.0, 1.0)
    }
}

/// Number of midpoint samples used by windowed-mean queries. Fixed so the
/// queries are pure functions of the window, independent of any machine
/// property.
const MEAN_SAMPLES: usize = 64;

/// The RNG-domain tag for fault realization streams: drivers derive
/// their fault randomness from `split_seed(seed, FAULT_SEED_DOMAIN)` so
/// it can never collide with (or perturb) the physics streams, which use
/// small split indices.
pub const FAULT_SEED_DOMAIN: u64 = 0xFA17_5EED;

/// A deterministic, composable schedule of fault events.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The empty schedule — guaranteed to have no observable effect on
    /// any run.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a schedule from events.
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        Self { events }
    }

    /// A seeded pseudo-random stress schedule covering every fault kind,
    /// spread over `duration_s` — the canonical input of the fault-matrix
    /// smoke run and chaos tests. Deterministic in `seed`.
    pub fn stress(seed: u64, duration_s: f64) -> Self {
        // Derive window positions from the seed without an RNG object so
        // the layout is a trivially auditable function of the seed.
        let frac = |k: u64| cast::to_f64(split_seed(seed, k) % 1000) / 1000.0;
        let w = duration_s / 12.0;
        let at = |k: u64| frac(k) * duration_s * 0.8;
        Self::from_events(vec![
            FaultEvent::new(
                at(1),
                2.0 * w,
                FaultKind::DetectorDropout {
                    channel: 1 + cast::u64_low32(split_seed(seed, 8) % 3),
                    arm: if split_seed(seed, 9).is_multiple_of(2) {
                        Arm::Signal
                    } else {
                        Arm::Idler
                    },
                },
            ),
            FaultEvent::new(
                at(2),
                w,
                FaultKind::DarkCountBurst {
                    channel: None,
                    rate_multiplier: 3.0 + 7.0 * frac(10),
                },
            ),
            FaultEvent::new(
                at(3),
                2.0 * w,
                FaultKind::PumpPowerStep {
                    factor: 0.4 + 0.5 * frac(11),
                },
            ),
            FaultEvent::new(at(4), 0.5 * w, FaultKind::PumpLockLoss),
            FaultEvent::new(
                at(5),
                3.0 * w,
                FaultKind::ThermalDetuning {
                    peak_hz: 40e6 + 80e6 * frac(12),
                },
            ),
            FaultEvent::new(
                at(6),
                w,
                FaultKind::PhaseJump {
                    rad: 0.3 + 1.2 * frac(13),
                },
            ),
            FaultEvent::new(
                at(7),
                w,
                FaultKind::TdcSaturation {
                    max_rate_hz: 2000.0 + 8000.0 * frac(14),
                },
            ),
        ])
    }

    /// `true` when there are no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Appends an event (builder-style).
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Merges another schedule's events into this one.
    pub fn merge(mut self, other: &Self) -> Self {
        self.events.extend_from_slice(&other.events);
        self
    }

    /// Events whose window overlaps `[t0, t1)`.
    pub fn overlapping(&self, t0: f64, t1: f64) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.overlap_s(t0, t1) > 0.0)
    }

    /// Instantaneous pair-rate factor from pump power steps and thermal
    /// detuning at time `t_s` (lock loss is handled separately by the
    /// supervisor, which turns it into recovery outages).
    ///
    /// Power steps scale the rate as `factor²` (spontaneous FWM is
    /// quadratic in pump power); thermal detuning passes the pump through
    /// the squared Lorentzian power response of the resonance of loaded
    /// linewidth `linewidth_hz` (both pump photons must enter).
    pub fn pump_rate_factor(&self, t_s: f64, linewidth_hz: f64) -> f64 {
        let mut f = 1.0;
        for e in &self.events {
            if !e.active_at(t_s) {
                continue;
            }
            match e.kind {
                FaultKind::PumpPowerStep { factor } => {
                    f *= (factor * factor).max(0.0);
                }
                FaultKind::ThermalDetuning { peak_hz } => {
                    // Triangular ramp: 0 → peak → 0 across the window.
                    let p = e.progress(t_s);
                    let det = peak_hz * (1.0 - (2.0 * p - 1.0).abs());
                    let x = 2.0 * det / linewidth_hz.max(1.0);
                    let response = 1.0 / (1.0 + x * x);
                    f *= response * response;
                }
                _ => {}
            }
        }
        f
    }

    /// Mean of [`Self::pump_rate_factor`] over `[t0, t1)` (fixed
    /// midpoint-rule sampling — a pure function of the window).
    pub fn mean_pump_rate_factor(&self, t0: f64, t1: f64, linewidth_hz: f64) -> f64 {
        if self.is_empty() || t1 <= t0 {
            return 1.0;
        }
        let dt = (t1 - t0) / cast::to_f64(MEAN_SAMPLES);
        (0..MEAN_SAMPLES)
            .map(|i| self.pump_rate_factor(t0 + (cast::to_f64(i) + 0.5) * dt, linewidth_hz))
            .sum::<f64>()
            / cast::to_f64(MEAN_SAMPLES)
    }

    /// Fraction of `[t0, t1)` during which the detector on `(channel,
    /// arm)` is dead, with overlapping dropout windows merged.
    pub fn dead_fraction(&self, channel: u32, arm: Arm, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        let mut spans: Vec<(f64, f64)> = self
            .events
            .iter()
            .filter(|e| {
                matches!(e.kind, FaultKind::DetectorDropout { channel: c, arm: a }
                    if c == channel && a == arm)
            })
            .map(|e| (e.start_s.max(t0), e.end_s().min(t1)))
            .filter(|(a, b)| b > a)
            .collect();
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut covered = 0.0;
        let mut cursor = t0;
        for (a, b) in spans {
            let a = a.max(cursor);
            if b > a {
                covered += b - a;
                cursor = b;
            }
        }
        covered / (t1 - t0)
    }

    /// `true` when the detector on `(channel, arm)` is dead at `t_s`.
    pub fn detector_dead_at(&self, channel: u32, arm: Arm, t_s: f64) -> bool {
        self.events.iter().any(|e| {
            e.active_at(t_s)
                && matches!(e.kind, FaultKind::DetectorDropout { channel: c, arm: a }
                    if c == channel && a == arm)
        })
    }

    /// Instantaneous dark-count-rate multiplier for `channel` at `t_s`.
    pub fn dark_multiplier(&self, channel: u32, t_s: f64) -> f64 {
        let mut m = 1.0;
        for e in &self.events {
            if !e.active_at(t_s) {
                continue;
            }
            if let FaultKind::DarkCountBurst {
                channel: c,
                rate_multiplier,
            } = e.kind
            {
                if c.is_none() || c == Some(channel) {
                    m *= rate_multiplier.max(0.0);
                }
            }
        }
        m
    }

    /// Mean dark-count multiplier for `channel` over `[t0, t1)`.
    pub fn mean_dark_multiplier(&self, channel: u32, t0: f64, t1: f64) -> f64 {
        if self.is_empty() || t1 <= t0 {
            return 1.0;
        }
        let dt = (t1 - t0) / cast::to_f64(MEAN_SAMPLES);
        (0..MEAN_SAMPLES)
            .map(|i| self.dark_multiplier(channel, t0 + (cast::to_f64(i) + 0.5) * dt))
            .sum::<f64>()
            / cast::to_f64(MEAN_SAMPLES)
    }

    /// Instantaneous interferometer phase offset at `t_s` (sum of active
    /// jumps), rad.
    pub fn phase_offset(&self, t_s: f64) -> f64 {
        self.events
            .iter()
            .filter(|e| e.active_at(t_s))
            .map(|e| match e.kind {
                FaultKind::PhaseJump { rad } => rad,
                _ => 0.0,
            })
            .sum()
    }

    /// Mean phase offset over `[t0, t1)`, rad.
    pub fn mean_phase_offset(&self, t0: f64, t1: f64) -> f64 {
        if self.is_empty() || t1 <= t0 {
            return 0.0;
        }
        let dt = (t1 - t0) / cast::to_f64(MEAN_SAMPLES);
        (0..MEAN_SAMPLES)
            .map(|i| self.phase_offset(t0 + (cast::to_f64(i) + 0.5) * dt))
            .sum::<f64>()
            / cast::to_f64(MEAN_SAMPLES)
    }

    /// Tightest TDC saturation cap active at `t_s`, Hz.
    pub fn saturation_cap_hz(&self, t_s: f64) -> Option<f64> {
        self.events
            .iter()
            .filter(|e| e.active_at(t_s))
            .filter_map(|e| match e.kind {
                FaultKind::TdcSaturation { max_rate_hz } => Some(max_rate_hz),
                _ => None,
            })
            .min_by(|a, b| a.total_cmp(b))
    }

    /// The lowest shard index named by a [`FaultKind::ShardAbort`]
    /// event, if any — the campaign engine's crash-injection query.
    ///
    /// Campaign queries ignore the event's time window: campaign faults
    /// are keyed by shard index, not by run time, so a schedule built
    /// with any `(start_s, duration_s)` behaves identically.
    pub fn shard_abort(&self) -> Option<u32> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::ShardAbort { shard } => Some(shard),
                _ => None,
            })
            .min()
    }

    /// Number of leading execution attempts that fail for `shard`
    /// (summed over [`FaultKind::ShardExecutorFault`] events naming it).
    pub fn shard_executor_failures(&self, shard: u32) -> u32 {
        self.events
            .iter()
            .map(|e| match e.kind {
                FaultKind::ShardExecutorFault { shard: s, failures } if s == shard => failures,
                _ => 0,
            })
            .sum()
    }

    /// `true` when `shard`'s checkpoint should be corrupted after its
    /// first successful write ([`FaultKind::CheckpointCorruption`]).
    pub fn checkpoint_corruption(&self, shard: u32) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::CheckpointCorruption { shard: s } if s == shard)
        })
    }

    /// `true` when `shard`'s checkpoint should be replaced by a stale
    /// one from a mismatched campaign ([`FaultKind::CheckpointStale`]).
    pub fn checkpoint_stale(&self, shard: u32) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::CheckpointStale { shard: s } if s == shard))
    }

    /// The lock-loss events overlapping `[0, duration_s)`, in start
    /// order — the supervisor's input.
    pub fn lock_loss_events(&self, duration_s: f64) -> Vec<FaultEvent> {
        let mut out: Vec<FaultEvent> = self
            .events
            .iter()
            .copied()
            .filter(|e| matches!(e.kind, FaultKind::PumpLockLoss) && e.overlap_s(0.0, duration_s) > 0.0)
            .collect();
        out.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_identity() {
        let s = FaultSchedule::empty();
        assert!(s.is_empty());
        assert_eq!(s.pump_rate_factor(1.0, 110e6), 1.0);
        assert_eq!(s.mean_pump_rate_factor(0.0, 10.0, 110e6), 1.0);
        assert_eq!(s.dead_fraction(1, Arm::Signal, 0.0, 10.0), 0.0);
        assert_eq!(s.dark_multiplier(1, 1.0), 1.0);
        assert_eq!(s.phase_offset(1.0), 0.0);
        assert_eq!(s.saturation_cap_hz(1.0), None);
    }

    #[test]
    fn power_step_scales_quadratically() {
        let s = FaultSchedule::empty().with(FaultEvent::new(
            1.0,
            2.0,
            FaultKind::PumpPowerStep { factor: 0.5 },
        ));
        assert_eq!(s.pump_rate_factor(2.0, 110e6), 0.25);
        assert_eq!(s.pump_rate_factor(0.5, 110e6), 1.0);
        assert_eq!(s.pump_rate_factor(3.5, 110e6), 1.0);
    }

    #[test]
    fn thermal_detuning_peaks_mid_window() {
        let s = FaultSchedule::empty().with(FaultEvent::new(
            0.0,
            10.0,
            FaultKind::ThermalDetuning { peak_hz: 110e6 },
        ));
        let mid = s.pump_rate_factor(5.0, 110e6);
        let edge = s.pump_rate_factor(0.5, 110e6);
        assert!(mid < edge, "mid {mid} edge {edge}");
        // Full-linewidth detuning: response = 1/(1+4)=0.2, squared.
        assert!((mid - 0.04).abs() < 1e-12, "mid {mid}");
    }

    #[test]
    fn dead_fraction_merges_overlaps() {
        let d = FaultKind::DetectorDropout {
            channel: 2,
            arm: Arm::Idler,
        };
        let s = FaultSchedule::from_events(vec![
            FaultEvent::new(1.0, 3.0, d),
            FaultEvent::new(2.0, 3.0, d),
        ]);
        assert!((s.dead_fraction(2, Arm::Idler, 0.0, 10.0) - 0.4).abs() < 1e-12);
        assert_eq!(s.dead_fraction(2, Arm::Signal, 0.0, 10.0), 0.0);
        assert_eq!(s.dead_fraction(1, Arm::Idler, 0.0, 10.0), 0.0);
        assert!(s.detector_dead_at(2, Arm::Idler, 1.5));
        assert!(!s.detector_dead_at(2, Arm::Idler, 5.5));
    }

    #[test]
    fn dark_burst_channel_filter() {
        let s = FaultSchedule::empty().with(FaultEvent::new(
            0.0,
            5.0,
            FaultKind::DarkCountBurst {
                channel: Some(3),
                rate_multiplier: 10.0,
            },
        ));
        assert_eq!(s.dark_multiplier(3, 1.0), 10.0);
        assert_eq!(s.dark_multiplier(1, 1.0), 1.0);
        let all = FaultSchedule::empty().with(FaultEvent::new(
            0.0,
            5.0,
            FaultKind::DarkCountBurst {
                channel: None,
                rate_multiplier: 4.0,
            },
        ));
        assert_eq!(all.dark_multiplier(1, 1.0), 4.0);
        assert_eq!(all.dark_multiplier(5, 1.0), 4.0);
    }

    #[test]
    fn phase_jumps_compose() {
        let s = FaultSchedule::from_events(vec![
            FaultEvent::new(0.0, 4.0, FaultKind::PhaseJump { rad: 0.5 }),
            FaultEvent::new(2.0, 4.0, FaultKind::PhaseJump { rad: 0.25 }),
        ]);
        assert_eq!(s.phase_offset(1.0), 0.5);
        assert_eq!(s.phase_offset(3.0), 0.75);
        assert_eq!(s.phase_offset(5.0), 0.25);
    }

    #[test]
    fn saturation_takes_tightest_cap() {
        let s = FaultSchedule::from_events(vec![
            FaultEvent::new(0.0, 4.0, FaultKind::TdcSaturation { max_rate_hz: 5000.0 }),
            FaultEvent::new(1.0, 2.0, FaultKind::TdcSaturation { max_rate_hz: 1000.0 }),
        ]);
        assert_eq!(s.saturation_cap_hz(0.5), Some(5000.0));
        assert_eq!(s.saturation_cap_hz(1.5), Some(1000.0));
        assert_eq!(s.saturation_cap_hz(4.5), None);
    }

    #[test]
    fn stress_schedule_is_deterministic_and_covers_kinds() {
        let a = FaultSchedule::stress(7, 60.0);
        let b = FaultSchedule::stress(7, 60.0);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 7);
        assert!(!a.lock_loss_events(60.0).is_empty());
        let c = FaultSchedule::stress(8, 60.0);
        assert_ne!(a, c);
    }

    #[test]
    fn campaign_faults_are_inert_for_physics_queries() {
        // A schedule carrying only campaign-level faults must behave
        // exactly like the empty schedule for every physics query, so a
        // campaign fault plan can never perturb simulated physics.
        let s = FaultSchedule::from_events(vec![
            FaultEvent::new(0.0, 10.0, FaultKind::ShardAbort { shard: 2 }),
            FaultEvent::new(0.0, 10.0, FaultKind::ShardExecutorFault { shard: 1, failures: 2 }),
            FaultEvent::new(0.0, 10.0, FaultKind::CheckpointCorruption { shard: 0 }),
            FaultEvent::new(0.0, 10.0, FaultKind::CheckpointStale { shard: 3 }),
        ]);
        assert_eq!(s.pump_rate_factor(1.0, 110e6), 1.0);
        assert_eq!(s.dead_fraction(1, Arm::Signal, 0.0, 10.0), 0.0);
        assert!(!s.detector_dead_at(1, Arm::Idler, 1.0));
        assert_eq!(s.dark_multiplier(1, 1.0), 1.0);
        assert_eq!(s.phase_offset(1.0), 0.0);
        assert_eq!(s.saturation_cap_hz(1.0), None);
        assert!(s.lock_loss_events(10.0).is_empty());
        assert!(s.events().iter().all(|e| e.kind.is_campaign()));
    }

    #[test]
    fn campaign_queries_ignore_time_windows() {
        let s = FaultSchedule::from_events(vec![
            FaultEvent::new(123.0, 0.0, FaultKind::ShardAbort { shard: 5 }),
            FaultEvent::new(-4.0, 0.5, FaultKind::ShardAbort { shard: 2 }),
            FaultEvent::new(0.0, 0.0, FaultKind::ShardExecutorFault { shard: 2, failures: 1 }),
            FaultEvent::new(9.0, 0.0, FaultKind::ShardExecutorFault { shard: 2, failures: 2 }),
            FaultEvent::new(7.0, 0.0, FaultKind::CheckpointCorruption { shard: 1 }),
            FaultEvent::new(7.0, 0.0, FaultKind::CheckpointStale { shard: 4 }),
        ]);
        // Lowest abort index wins; executor failures sum per shard.
        assert_eq!(s.shard_abort(), Some(2));
        assert_eq!(s.shard_executor_failures(2), 3);
        assert_eq!(s.shard_executor_failures(7), 0);
        assert!(s.checkpoint_corruption(1));
        assert!(!s.checkpoint_corruption(2));
        assert!(s.checkpoint_stale(4));
        assert!(!s.checkpoint_stale(1));
        assert_eq!(FaultSchedule::empty().shard_abort(), None);
    }

    #[test]
    fn campaign_labels_name_the_shard() {
        assert!(FaultKind::ShardAbort { shard: 3 }.label().contains("shard 3"));
        assert!(FaultKind::ShardExecutorFault { shard: 1, failures: 2 }
            .label()
            .contains("2 failed attempts"));
        assert!(FaultKind::CheckpointCorruption { shard: 0 }
            .label()
            .contains("corrupted"));
        assert!(FaultKind::CheckpointStale { shard: 9 }.label().contains("stale"));
        assert!(!FaultKind::PumpLockLoss.is_campaign());
    }

    #[test]
    fn merge_concatenates() {
        let a = FaultSchedule::empty().with(FaultEvent::new(0.0, 1.0, FaultKind::PumpLockLoss));
        let b = FaultSchedule::empty().with(FaultEvent::new(
            2.0,
            1.0,
            FaultKind::PumpPowerStep { factor: 2.0 },
        ));
        let m = a.merge(&b);
        assert_eq!(m.events().len(), 2);
        assert_eq!(m.lock_loss_events(10.0).len(), 1);
    }
}
