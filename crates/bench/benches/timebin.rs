//! §IV bench targets: F7 interference fringes and T2 multiplexed CHSH.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qfc_bench::configs::timebin_small;
use qfc_core::source::QfcSource;
use qfc_core::timebin::run_timebin_experiment;

fn f7_fringes(c: &mut Criterion) {
    let source = QfcSource::paper_device_timebin();
    let cfg = timebin_small();
    let mut g = c.benchmark_group("f7_fringes");
    g.sample_size(10);
    g.bench_function("regenerate", |b| {
        b.iter(|| {
            let report = run_timebin_experiment(black_box(&source), black_box(&cfg), 21);
            black_box(report.mean_visibility())
        })
    });
    g.finish();
}

fn t2_chsh_channels(c: &mut Criterion) {
    let source = QfcSource::paper_device_timebin();
    let mut cfg = timebin_small();
    cfg.channels = 5;
    let mut g = c.benchmark_group("t2_chsh_channels");
    g.sample_size(10);
    g.bench_function("regenerate", |b| {
        b.iter(|| {
            let report = run_timebin_experiment(black_box(&source), black_box(&cfg), 22);
            black_box(report.channels_violating())
        })
    });
    g.finish();
}

criterion_group!(benches, f7_fringes, t2_chsh_channels);
criterion_main!(benches);
