#!/usr/bin/env bash
# Tier-1 gate: release build, root test suite, workspace static analysis
# (qfc-lint), per-crate lints, and a seconds-scale bench smoke run that
# cross-checks serial vs parallel determinism. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> qfc-lint --deny (workspace static analysis)"
cargo run --release -p qfc-lint -- --deny

echo "==> qfc-lint drift check (CALLGRAPH.json + LINT_REPORT.json byte-identity)"
# A second run must reproduce both artifacts byte-for-byte: the analyzer's
# determinism contract is itself under test, not just asserted.
cargo run --release -p qfc-lint -- \
  --json target/LINT_REPORT.2.json --callgraph target/CALLGRAPH.2.json > /dev/null
cmp target/CALLGRAPH.json target/CALLGRAPH.2.json
cmp target/LINT_REPORT.json target/LINT_REPORT.2.json
rm -f target/LINT_REPORT.2.json target/CALLGRAPH.2.json

echo "==> cargo clippy -p qfc-runtime -- -D warnings"
cargo clippy -p qfc-runtime -- -D warnings

# Library crates must not panic via unwrap/expect: every fallible path
# either returns a QfcError or panics through a validated legacy wrapper.
# The roster is derived from crates/*/ so a new crate cannot skip the
# gate by omission (qfc-lint's ci-roster rule cross-checks this file).
echo "==> cargo clippy (library no-unwrap gate)"
roster=()
for d in crates/*/; do
  name="$(sed -n 's/^name = "\(.*\)"/\1/p' "$d/Cargo.toml" | head -n1)"
  # qfc-bench is a binary crate (no library target to gate).
  if [ "$name" != "qfc-bench" ]; then
    roster+=(-p "$name")
  fi
done
cargo clippy --no-deps --lib "${roster[@]}" \
  -- -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "==> qfc-bench --smoke --check-baseline (determinism + bench-regression gate)"
# Fails when any workload loses serial/parallel byte-identity, allocates
# more than 10 % (+64 calls) beyond the committed baseline's serial leg,
# or slows down by more than the --max-slowdown factor plus a 50 ms
# absolute slack (generous: wall time is machine-dependent and ms-scale
# workloads sit in fs/scheduler noise; allocation counts are not).
./target/release/qfc-bench --smoke --check-baseline BENCH_baseline.json \
  --max-slowdown 4.0 --out target/BENCH_smoke.json
if grep -q '"oversubscribed": true' target/BENCH_smoke.json; then
  echo "WARNING: bench ran more threads than host CPUs; speedup figures" \
       "are oversubscription noise (only the determinism check is valid)." >&2
fi
if grep -q '"parallel_unvalidated": true' target/BENCH_smoke.json; then
  echo "WARNING: parallel leg unvalidated (single-CPU host or --threads 1);" \
       "speedup factors are meaningless — only byte-identity and the" \
       "allocation columns were checked." >&2
fi

echo "==> campaign crash-recovery smoke (abort -> resume -> byte-identity)"
# Kills a sharded campaign mid-run via an injected shard abort, resumes it
# from the surviving checkpoints, and fails unless the merged report is
# byte-identical to a fresh single-process driver run.
cargo run --release --example campaign_recovery

echo "==> fault matrix (graceful-degradation smoke run)"
cargo run --release --example fault_matrix > target/FAULT_MATRIX.md

echo "CI gate passed."
