//! `qfc-cli` — run the paper's virtual experiments from the command line.
//!
//! ```text
//! qfc-cli <experiment> [--seed N] [--fast] [--json]
//!
//! experiments:
//!   device       print the calibrated device figures
//!   heralded     §II  F1/T1/F2  heralded single photons
//!   stability    §II  F3       weeks-long stability run
//!   crosspol     §III F4/F6    type-II cross-polarized pairs
//!   opo          §III F5       OPO power transfer curve
//!   timebin      §IV  F7/T2    time-bin entanglement + CHSH
//!   multiphoton  §V   T3/F8/T4 four-photon states
//!   purity       P1–P3         spectral purity & memory acceptance
//!   all          everything above, in order
//! ```

use std::process::ExitCode;

use qfc::core::crosspol::{run_crosspol_experiment, run_power_sweep, CrossPolConfig};
use qfc::core::heralded::{
    run_heralded_experiment, run_stability_experiment, HeraldedConfig, StabilityConfig,
};
use qfc::core::multiphoton::{run_multiphoton_experiment, MultiPhotonConfig};
use qfc::core::purity::{run_purity_analysis, PurityConfig};
use qfc::core::report::ExperimentReport;
use qfc::core::source::QfcSource;
use qfc::core::timebin::{run_timebin_experiment, TimeBinConfig};
use qfc::faults::{QfcError, QfcResult};
use qfc::photonics::waveguide::Polarization;

struct Options {
    seed: u64,
    fast: bool,
    json: bool,
}

fn emit(report: &ExperimentReport, opts: &Options) -> QfcResult<()> {
    if opts.json {
        let json = serde_json::to_string_pretty(report)
            .map_err(|e| QfcError::persistence(format!("serialize {} report: {e}", report.title)))?;
        println!("{json}");
    } else {
        println!("{}", report.render());
    }
    Ok(())
}

fn run_one(name: &str, opts: &Options) -> QfcResult<()> {
    match name {
        "device" => {
            let source = QfcSource::paper_device();
            let ring = source.ring();
            println!("radius            : {:.1} um", ring.radius() * 1e6);
            println!("FSR (TE)          : {}", ring.fsr(Polarization::Te));
            println!("loaded linewidth  : {}", ring.linewidth());
            println!("loaded Q          : {:.2e}", ring.q_loaded());
            println!("finesse           : {:.0}", ring.finesse());
            println!("field enhancement : {:.0}x", ring.field_enhancement_power());
            Ok(())
        }
        "heralded" => {
            let source = QfcSource::paper_device();
            let cfg = if opts.fast {
                HeraldedConfig::fast_demo()
            } else {
                HeraldedConfig::paper()
            };
            let report = run_heralded_experiment(&source, &cfg, opts.seed);
            emit(&report.to_report(), opts)?;
            Ok(())
        }
        "stability" => {
            let source = QfcSource::paper_device();
            let report = run_stability_experiment(&source, &StabilityConfig::paper(), opts.seed);
            emit(&report.to_report(), opts)?;
            Ok(())
        }
        "crosspol" => {
            let source = QfcSource::paper_device_type2();
            let mut cfg = if opts.fast {
                CrossPolConfig::fast_demo()
            } else {
                CrossPolConfig::paper()
            };
            if opts.fast {
                cfg.duration_s = 30.0;
            }
            let report = run_crosspol_experiment(&source, &cfg, opts.seed);
            emit(&report.to_report(), opts)?;
            Ok(())
        }
        "opo" => {
            let source = QfcSource::paper_device_type2();
            let report = run_power_sweep(&source, 16);
            emit(&report.to_report(), opts)?;
            Ok(())
        }
        "timebin" => {
            let source = QfcSource::paper_device_timebin();
            let cfg = if opts.fast {
                TimeBinConfig::fast_demo()
            } else {
                TimeBinConfig::paper()
            };
            let report = run_timebin_experiment(&source, &cfg, opts.seed);
            emit(&report.to_report(), opts)?;
            Ok(())
        }
        "multiphoton" => {
            let source = QfcSource::paper_device_timebin();
            let cfg = if opts.fast {
                MultiPhotonConfig::fast_demo()
            } else {
                MultiPhotonConfig::paper()
            };
            let report = run_multiphoton_experiment(&source, &cfg, opts.seed);
            emit(&report.to_report(), opts)?;
            Ok(())
        }
        "purity" => {
            let source = QfcSource::paper_device_timebin();
            let report = run_purity_analysis(&source, &PurityConfig::paper());
            emit(&report.to_report(), opts)?;
            Ok(())
        }
        "reach" => {
            let source = QfcSource::paper_device_timebin();
            let cfg = TimeBinConfig::paper();
            for m in 1..=cfg.channels {
                match qfc::core::link::chsh_reach_km(&source, &cfg, m, 10.0e6) {
                    Some(km) => println!("channel {m}: CHSH reach {km:.0} km per arm"),
                    None => println!("channel {m}: no violation even locally"),
                }
            }
            Ok(())
        }
        "spectrum" => {
            let source = QfcSource::paper_device();
            let spec = qfc::photonics::spectrum::comb_spectrum(
                source.ring(),
                qfc::photonics::units::Power::from_mw(30.0),
                40,
            );
            println!(
                "above threshold: {} | total {:.3e} W | {} lines within 30 dB | bands {:?}",
                spec.above_threshold,
                spec.total_power_w(),
                spec.lines_above_floor(30.0),
                spec.bands_covered()
            );
            Ok(())
        }
        "all" => {
            for name in [
                "device",
                "heralded",
                "stability",
                "crosspol",
                "opo",
                "timebin",
                "multiphoton",
                "purity",
                "reach",
                "spectrum",
            ] {
                run_one(name, opts)?;
            }
            Ok(())
        }
        other => Err(QfcError::invalid(format!("unknown experiment '{other}'"))),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        seed: 20170327,
        fast: false,
        json: false,
    };
    let mut name: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => opts.seed = s,
                None => {
                    eprintln!("--seed needs an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--fast" => opts.fast = true,
            "--json" => opts.json = true,
            "--help" | "-h" => {
                eprintln!("usage: qfc-cli <experiment> [--seed N] [--fast] [--json]");
                eprintln!(
                    "experiments: device heralded stability crosspol opo timebin \
                     multiphoton purity reach spectrum all"
                );
                return ExitCode::SUCCESS;
            }
            other if name.is_none() => name = Some(other.to_owned()),
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(name) = name else {
        eprintln!("usage: qfc-cli <experiment> [--seed N] [--fast] [--json]");
        return ExitCode::FAILURE;
    };
    match run_one(&name, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
