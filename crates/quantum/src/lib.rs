//! # qfc-quantum
//!
//! Quantum-state substrate of the `qfc` workspace: pure states and density
//! matrices of qubit registers, Pauli algebra, Bell states, entanglement
//! measures (concurrence, negativity, entropy), the CHSH inequality,
//! two-mode squeezed vacuum photon statistics, and the time-bin /
//! four-photon encodings of the paper's §IV–V experiments.
//!
//! ## Example
//!
//! ```
//! use qfc_quantum::bell::werner_state;
//! use qfc_quantum::chsh::{s_value, ChshSettings, CLASSICAL_BOUND};
//!
//! // The paper's 83 % raw visibility violates CHSH.
//! let rho = werner_state(0.83, 0.0);
//! let s = s_value(&rho, &ChshSettings::optimal_for_phi_plus());
//! assert!(s > CLASSICAL_BOUND);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bell;
pub mod chsh;
pub mod density;
pub mod entanglement;
pub mod fidelity;
pub mod fock;
pub mod multiphoton;
pub mod ops;
pub mod qudit;
pub mod state;
pub mod timebin;

pub use density::DensityMatrix;
pub use fock::TwoModeSqueezedVacuum;
pub use state::PureState;
