//! Contract tests of the fault-injection layer, driver by driver:
//!
//! * an **empty** fault schedule reproduces the legacy panicking APIs
//!   byte for byte (serialized-report equality), so the fallible layer
//!   costs nothing when nothing goes wrong;
//! * fault-injected runs are **deterministic across thread counts**
//!   (1, 4, and the ambient default), because every fault query is a
//!   pure function of the schedule and every recovery draw comes from
//!   its own split-seed lane;
//! * the supervisor's **quarantine** and **estimator-fallback** paths
//!   actually engage and are visible in the health report;
//! * arbitrary seeded schedules never produce NaN figures of merit
//!   (property test over the stress-schedule family).

use qfc::core::crosspol::{run_crosspol_experiment, try_run_crosspol_experiment, CrossPolConfig};
use qfc::core::heralded::{run_heralded_experiment, try_run_heralded_experiment, HeraldedConfig};
use qfc::core::multiphoton::{
    run_multiphoton_experiment, try_run_multiphoton_experiment, MultiPhotonConfig,
};
use qfc::core::source::QfcSource;
use qfc::core::supervisor;
use qfc::core::timebin::{
    nominal_duration_s, run_timebin_experiment, try_run_timebin_experiment, TimeBinConfig,
};
use qfc::faults::{Arm, FaultEvent, FaultKind, FaultSchedule, QfcError};
use qfc::runtime::with_threads;

use proptest::prelude::*;

fn heralded_cfg() -> HeraldedConfig {
    let mut c = HeraldedConfig::fast_demo();
    c.duration_s = 2.0;
    c.linewidth_pairs = 2000;
    c
}

fn crosspol_cfg() -> CrossPolConfig {
    let mut c = CrossPolConfig::fast_demo();
    c.duration_s = 5.0;
    c
}

fn timebin_cfg() -> TimeBinConfig {
    let mut c = TimeBinConfig::fast_demo();
    c.frames_per_point = 200_000;
    c
}

fn multiphoton_cfg() -> MultiPhotonConfig {
    let mut c = MultiPhotonConfig::fast_demo();
    c.bell_shots_per_setting = 200;
    c.four_fold_frames_per_point = 50_000_000_000;
    c.four_fold_phase_steps = 12;
    c.four_shots_per_setting = 20;
    c
}

// ---------------------------------------------------------------------
// Empty schedule ⇒ byte-identical to the legacy panicking APIs.
// ---------------------------------------------------------------------

#[test]
fn empty_schedule_is_byte_identical_heralded() {
    let source = QfcSource::paper_device();
    let cfg = heralded_cfg();
    let legacy = run_heralded_experiment(&source, &cfg, 777);
    let run = try_run_heralded_experiment(&source, &cfg, 777, &FaultSchedule::empty())
        .expect("clean run");
    assert!(run.health.is_pristine());
    assert_eq!(
        serde_json::to_string(&legacy).unwrap(),
        serde_json::to_string(&run.report).unwrap(),
    );
}

#[test]
fn empty_schedule_is_byte_identical_crosspol() {
    let source = QfcSource::paper_device_type2();
    let cfg = crosspol_cfg();
    let legacy = run_crosspol_experiment(&source, &cfg, 99);
    let run =
        try_run_crosspol_experiment(&source, &cfg, 99, &FaultSchedule::empty()).expect("clean run");
    assert!(run.health.is_pristine());
    assert_eq!(
        serde_json::to_string(&legacy).unwrap(),
        serde_json::to_string(&run.report).unwrap(),
    );
}

#[test]
fn empty_schedule_is_byte_identical_timebin() {
    let source = QfcSource::paper_device_timebin();
    let cfg = timebin_cfg();
    let legacy = run_timebin_experiment(&source, &cfg, 4243);
    let run =
        try_run_timebin_experiment(&source, &cfg, 4243, &FaultSchedule::empty()).expect("clean run");
    assert!(run.health.is_pristine());
    assert_eq!(
        serde_json::to_string(&legacy).unwrap(),
        serde_json::to_string(&run.report).unwrap(),
    );
}

#[test]
fn empty_schedule_is_byte_identical_multiphoton() {
    let source = QfcSource::paper_device_timebin();
    let cfg = multiphoton_cfg();
    let legacy = run_multiphoton_experiment(&source, &cfg, 55);
    let run = try_run_multiphoton_experiment(&source, &cfg, 55, &FaultSchedule::empty())
        .expect("clean run");
    assert!(run.health.is_pristine());
    assert_eq!(
        serde_json::to_string(&legacy).unwrap(),
        serde_json::to_string(&run.report).unwrap(),
    );
}

// ---------------------------------------------------------------------
// Fault-injected runs are thread-count invariant.
// ---------------------------------------------------------------------

/// Runs `f` at one worker, four workers, and the ambient thread count,
/// and asserts the three serialized outputs are byte-identical.
fn assert_thread_invariant<T: serde::Serialize>(f: impl Fn() -> T + Sync) {
    let serial = serde_json::to_string(&with_threads(1, &f)).unwrap();
    let four = serde_json::to_string(&with_threads(4, &f)).unwrap();
    let ambient = serde_json::to_string(&f()).unwrap();
    assert_eq!(serial, four, "1 vs 4 threads");
    assert_eq!(serial, ambient, "1 thread vs ambient");
}

#[test]
fn faulty_heralded_run_is_thread_invariant() {
    let source = QfcSource::paper_device();
    let cfg = heralded_cfg();
    let schedule = FaultSchedule::stress(3, cfg.duration_s);
    assert_thread_invariant(|| {
        try_run_heralded_experiment(&source, &cfg, 4242, &schedule).expect("survives")
    });
}

#[test]
fn faulty_crosspol_run_is_thread_invariant() {
    let source = QfcSource::paper_device_type2();
    let cfg = crosspol_cfg();
    let schedule = FaultSchedule::stress(5, cfg.duration_s);
    assert_thread_invariant(|| {
        try_run_crosspol_experiment(&source, &cfg, 99, &schedule).expect("survives")
    });
}

#[test]
fn faulty_timebin_run_is_thread_invariant() {
    let source = QfcSource::paper_device_timebin();
    let cfg = timebin_cfg();
    let schedule = FaultSchedule::stress(7, nominal_duration_s(&cfg));
    assert_thread_invariant(|| {
        try_run_timebin_experiment(&source, &cfg, 4243, &schedule).expect("survives")
    });
}

/// Pump re-lock recovery — the one supervisor path that consumes RNG
/// draws — at one, four, and eight workers: the dedicated `fault_stream`
/// lanes make the whole recovery plan a pure function of the seed, so
/// the serialized run (physics report *and* health section) must be
/// byte-identical at every thread count, and the recorded outage must
/// sit exactly on the deterministic backoff ladder
/// `fault_window + base·(2^attempts − 1)` replayed from the lane.
#[test]
fn lock_loss_recovery_is_byte_identical_at_1_4_8_threads() {
    use qfc::core::supervisor::{fault_stream, SupervisorPolicy};
    use qfc::mathkit::rng::{bernoulli, rng_from_seed};

    let source = QfcSource::paper_device_timebin();
    let cfg = timebin_cfg();
    let seed = 31_337;
    // Start and width are exact binary fractions inside the ~0.64 s run,
    // so the clipped overlap reproduces `window_s` bit-for-bit.
    let window_s = 0.25;
    let schedule = FaultSchedule::empty().with(FaultEvent::new(
        0.25,
        window_s,
        FaultKind::PumpLockLoss,
    ));
    let run = |threads: usize| {
        let r = with_threads(threads, || {
            try_run_timebin_experiment(&source, &cfg, seed, &schedule).expect("survives")
        });
        serde_json::to_string(&r).expect("serializes")
    };
    let one = run(1);
    assert_eq!(one, run(4), "1 vs 4 threads");
    assert_eq!(one, run(8), "1 vs 8 threads");

    // Replay the event's dedicated fault lane (event 0 → lane 1) and pin
    // the health record to the exact ladder.
    let policy = SupervisorPolicy::default();
    let mut rng = rng_from_seed(fault_stream(seed, 1));
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        if bernoulli(&mut rng, policy.relock_success_prob) {
            break;
        }
    }
    let ladder: f64 = (1..=attempts)
        .map(|j| policy.relock_base_s * f64::from(1u32 << (j - 1)))
        .sum();
    let parsed = with_threads(1, || {
        try_run_timebin_experiment(&source, &cfg, seed, &schedule).expect("survives")
    });
    assert_eq!(
        parsed.health.outage_s.to_bits(),
        (window_s + ladder).to_bits(),
        "outage {} ≠ window {window_s} + ladder {ladder}",
        parsed.health.outage_s
    );
}

// ---------------------------------------------------------------------
// Supervisor recovery paths.
// ---------------------------------------------------------------------

/// A schedule that kills channel 1's signal detector for most of the
/// run, which is past the quarantine threshold.
fn kill_channel(channel: u32, duration_s: f64) -> FaultEvent {
    FaultEvent::new(
        0.0,
        0.9 * duration_s,
        FaultKind::DetectorDropout {
            channel,
            arm: Arm::Signal,
        },
    )
}

#[test]
fn dead_detector_quarantines_only_that_channel() {
    let source = QfcSource::paper_device();
    let cfg = heralded_cfg();
    let schedule = FaultSchedule::empty().with(kill_channel(1, cfg.duration_s));
    let run = try_run_heralded_experiment(&source, &cfg, 11, &schedule).expect("degraded run");
    assert_eq!(run.health.quarantined_channels, vec![1]);
    let measured: Vec<u32> = run.report.channels.iter().map(|c| c.m).collect();
    assert_eq!(measured, vec![2, 3]);
    assert!(run.health.is_degraded());
}

#[test]
fn all_channels_dead_is_a_taxonomy_error() {
    let source = QfcSource::paper_device();
    let cfg = heralded_cfg();
    let mut schedule = FaultSchedule::empty();
    for m in 1..=cfg.channels {
        schedule = schedule.with(kill_channel(m, cfg.duration_s));
    }
    let err = try_run_heralded_experiment(&source, &cfg, 11, &schedule)
        .expect_err("nothing left to measure");
    assert!(matches!(err, QfcError::ChannelsExhausted { .. }));
}

#[test]
fn diverging_mle_fallback_is_reported_in_health() {
    use qfc::quantum::bell::bell_phi;
    use qfc::quantum::density::DensityMatrix;
    use qfc::tomography::counts::simulate_counts_seeded;
    use qfc::tomography::reconstruct::MleOptions;
    use qfc::tomography::settings::all_settings;

    let rho = DensityMatrix::from_pure(&bell_phi(0.0));
    let data = simulate_counts_seeded(&rho, &all_settings(2), 400, 17);
    // A one-iteration budget cannot settle: the supervisor must swap in
    // linear inversion and say so.
    let opts = MleOptions {
        max_iterations: 1,
        tolerance: 1e-30,
        ..MleOptions::default()
    };
    let mut health = qfc::faults::HealthReport::pristine();
    let res = supervisor::reconstruct_with_fallback(&data, &opts, &mut health)
        .expect("fallback produces a state");
    assert!(!res.converged);
    assert!(health.is_degraded());
    let rendered = health.render();
    assert!(
        rendered.contains("linear inversion"),
        "health must name the fallback estimator: {rendered}"
    );
}

// ---------------------------------------------------------------------
// Property: no schedule in the stress family produces NaN figures.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn heralded_car_finite_under_arbitrary_faults(seed in 0u64..10_000) {
        let source = QfcSource::paper_device();
        let cfg = heralded_cfg();
        let schedule = FaultSchedule::stress(seed, cfg.duration_s);
        let run = try_run_heralded_experiment(&source, &cfg, seed ^ 0xABCD, &schedule)
            .expect("stress schedules are survivable");
        for c in &run.report.channels {
            prop_assert!(c.car.is_finite(), "m={}: CAR {}", c.m, c.car);
            prop_assert!(c.coincidence_rate_hz.is_finite());
        }
    }

    #[test]
    fn timebin_visibility_finite_under_arbitrary_faults(seed in 0u64..10_000) {
        let source = QfcSource::paper_device_timebin();
        let cfg = timebin_cfg();
        let schedule = FaultSchedule::stress(seed, nominal_duration_s(&cfg));
        let run = try_run_timebin_experiment(&source, &cfg, seed ^ 0x1234, &schedule)
            .expect("stress schedules are survivable");
        for f in &run.report.fringes {
            prop_assert!(f.fit.visibility.is_finite(), "m={}", f.m);
        }
        for c in &run.report.chsh {
            prop_assert!(c.s_value.is_finite(), "m={}", c.m);
        }
    }
}
