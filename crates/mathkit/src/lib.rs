//! # qfc-mathkit
//!
//! Numerical substrate for the `qfc` workspace: complex arithmetic, dense
//! complex linear algebra, a Hermitian eigensolver with matrix functions,
//! random-variate generation, descriptive statistics, and the least-squares
//! fits used to extract physical observables from simulated data.
//!
//! Everything is implemented from scratch on top of `std` (plus the `rand`
//! core RNG), keeping the workspace inside its approved dependency set.
//!
//! ## Example
//!
//! ```
//! use qfc_mathkit::cmatrix::CMatrix;
//! use qfc_mathkit::hermitian::eigh;
//!
//! // Diagonalize a Pauli-X-like coupling matrix.
//! let h = CMatrix::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
//! let eig = eigh(&h);
//! assert!((eig.eigenvalues[0] + 1.0).abs() < 1e-10);
//! assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cast;
pub mod cmatrix;
pub mod complex;
pub mod cvector;
pub mod fft;
pub mod fit;
pub mod hermitian;
pub mod rng;
pub mod sampling;
pub mod special;
pub mod stats;

pub use cmatrix::CMatrix;
pub use complex::Complex64;
pub use cvector::CVector;
