//! Entanglement measures beyond concurrence: negativity and entropy of
//! entanglement.

use qfc_mathkit::cmatrix::CMatrix;
use qfc_mathkit::hermitian::eigh;

use crate::density::DensityMatrix;

/// Partial transpose over the *second* qubit of a bipartition where the
/// first `k` qubits form subsystem A and the rest subsystem B.
///
/// # Panics
///
/// Panics unless `0 < k < n`.
pub fn partial_transpose(rho: &DensityMatrix, k: usize) -> CMatrix {
    let n = rho.qubits();
    assert!(k > 0 && k < n, "bipartition cut out of range");
    let da = 1usize << k;
    let db = 1usize << (n - k);
    let m = rho.as_matrix();
    CMatrix::from_fn(da * db, da * db, |row, col| {
        let (ia, ib) = (row / db, row % db);
        let (ja, jb) = (col / db, col % db);
        // Transpose subsystem B: swap ib ↔ jb.
        m[(ia * db + jb, ja * db + ib)]
    })
}

/// Negativity `N(ρ) = (‖ρ^{T_B}‖₁ − 1)/2` across the cut after qubit `k`.
///
/// `N = 1/2` for Bell states, `0` for PPT (unentangled two-qubit) states.
pub fn negativity(rho: &DensityMatrix, k: usize) -> f64 {
    let pt = partial_transpose(rho, k);
    let eigs = eigh(&pt).eigenvalues;
    let trace_norm: f64 = eigs.iter().map(|l| l.abs()).sum();
    ((trace_norm - 1.0) / 2.0).max(0.0)
}

/// Logarithmic negativity `E_N = ln ‖ρ^{T_B}‖₁` in nats.
pub fn log_negativity(rho: &DensityMatrix, k: usize) -> f64 {
    (2.0 * negativity(rho, k) + 1.0).ln()
}

/// Entropy of entanglement of a *pure* bipartite state: the von Neumann
/// entropy of the reduced state of the first `k` qubits, in nats.
pub fn entropy_of_entanglement(rho: &DensityMatrix, k: usize) -> f64 {
    assert!(k > 0 && k < rho.qubits(), "bipartition cut out of range");
    let keep: Vec<usize> = (0..k).collect();
    rho.partial_trace_keep(&keep).von_neumann_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bell::{bell_phi_plus, werner_state};
    use crate::state::PureState;

    #[test]
    fn bell_state_negativity_is_half() {
        let rho = DensityMatrix::from_pure(&bell_phi_plus());
        assert!((negativity(&rho, 1) - 0.5).abs() < 1e-9);
        assert!((log_negativity(&rho, 1) - 2.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn product_state_negativity_zero() {
        let rho = DensityMatrix::from_pure(&PureState::plus().tensor(&PureState::ket0()));
        assert!(negativity(&rho, 1) < 1e-10);
    }

    #[test]
    fn werner_negativity_threshold() {
        // Werner states are PPT (N = 0) for V ≤ 1/3.
        assert!(negativity(&werner_state(0.3, 0.0), 1) < 1e-9);
        assert!(negativity(&werner_state(0.5, 0.0), 1) > 0.05);
    }

    #[test]
    fn entropy_of_entanglement_bell() {
        let rho = DensityMatrix::from_pure(&bell_phi_plus());
        assert!((entropy_of_entanglement(&rho, 1) - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn four_photon_product_has_two_ebits_across_middle() {
        // |Φ⁺⟩₁₃ ⊗ |Φ⁺⟩₂₄ arrangement: across the 2|2 cut where each Bell
        // pair straddles the cut, entropy = 2·ln 2.
        // Build |Φ⁺⟩ ⊗ |Φ⁺⟩ on qubits (0,1),(2,3) then consider cut at 2:
        // each pair is inside one side → zero entropy.
        let pair = bell_phi_plus();
        let four = pair.tensor(&pair);
        let rho = DensityMatrix::from_pure(&four);
        assert!(entropy_of_entanglement(&rho, 2) < 1e-9);
        // Cut between the qubits of a single pair (after qubit 1): one
        // Bell pair straddles → ln 2.
        assert!((entropy_of_entanglement(&rho, 1) - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn partial_transpose_involution() {
        let rho = werner_state(0.8, 0.7);
        let pt = partial_transpose(&rho, 1);
        let ptpt = partial_transpose(
            &DensityMatrix::from_matrix(pt).expect("PT of Werner is a valid matrix shape"),
            1,
        );
        assert!(ptpt.approx_eq(rho.as_matrix(), 1e-12));
    }

    #[test]
    #[should_panic(expected = "cut out of range")]
    fn cut_must_be_interior() {
        let rho = DensityMatrix::maximally_mixed(2);
        let _ = negativity(&rho, 2);
    }
}
