//! End-to-end integration tests: each of the paper's four experiments run
//! through the full stack (photonics → quantum states → detectors →
//! analysis) at reduced statistics.

use qfc::core::crosspol::{run_crosspol_experiment, run_power_sweep, CrossPolConfig};
use qfc::core::heralded::{
    run_heralded_experiment, run_stability_experiment, HeraldedConfig, StabilityConfig,
};
use qfc::core::multiphoton::{run_multiphoton_experiment, MultiPhotonConfig};
use qfc::core::source::{EmissionRegime, QfcSource};
use qfc::core::timebin::{run_timebin_experiment, TimeBinConfig};
use qfc::photonics::pump::PumpConfig;
use qfc::photonics::units::Power;

#[test]
fn section_2_heralded_photons_end_to_end() {
    let source = QfcSource::paper_device();
    assert_eq!(source.regime(), EmissionRegime::HeraldedSinglePhotons);
    let report = run_heralded_experiment(&source, &HeraldedConfig::fast_demo(), 101);

    // Coincidences on every measured channel, diagonal-dominated matrix.
    for c in &report.channels {
        assert!(c.coincidence_rate_hz > 0.1, "channel {} has no pairs", c.m);
        assert!(c.car > 3.0, "channel {} CAR too low: {}", c.m, c.car);
    }
    assert!(report.matrix_contrast() > 3.0);
    // Linewidth from the coincidence decay lands on the ring linewidth.
    assert!((report.linewidth.linewidth_hz - 110e6).abs() / 110e6 < 0.2);
}

#[test]
fn section_2_stability_contrast() {
    let source = QfcSource::paper_device();
    let cfg = StabilityConfig::paper();
    let locked = run_stability_experiment(&source, &cfg, 102);
    let free = run_stability_experiment(
        &source.clone().with_pump(PumpConfig::ExternalCw {
            power: Power::from_mw(15.0),
            actively_stabilized: false,
        }),
        &cfg,
        102,
    );
    assert!(locked.relative_fluctuation < 0.10, "locked {}", locked.relative_fluctuation);
    assert!(free.relative_fluctuation > locked.relative_fluctuation);
    assert_eq!(locked.series.len(), 21);
}

#[test]
fn section_3_crosspol_end_to_end() {
    let source = QfcSource::paper_device_type2();
    assert_eq!(source.regime(), EmissionRegime::CrossPolarizedPairs);
    let report = run_crosspol_experiment(&source, &CrossPolConfig::fast_demo(), 103);
    assert!(report.car > 2.0, "CAR {}", report.car);
    assert!(report.stimulated_response < 1e-4);

    let sweep = run_power_sweep(&source, 10);
    assert!((sweep.below_exponent - 2.0).abs() < 0.1);
    assert!((sweep.above_exponent - 1.0).abs() < 0.1);
    assert!((sweep.threshold_w - 0.014).abs() < 0.004);
}

#[test]
fn section_4_timebin_end_to_end() {
    let source = QfcSource::paper_device_timebin();
    assert_eq!(source.regime(), EmissionRegime::TimeBinEntangled);
    let report = run_timebin_experiment(&source, &TimeBinConfig::fast_demo(), 107);
    // Visibility above the CHSH threshold on every channel; all violate.
    for f in &report.fringes {
        assert!(f.fit.visibility > 0.72, "m={}: V {}", f.m, f.fit.visibility);
    }
    assert_eq!(report.channels_violating(), report.chsh.len());
}

#[test]
fn section_5_multiphoton_end_to_end() {
    let source = QfcSource::paper_device_timebin();
    let report = run_multiphoton_experiment(&source, &MultiPhotonConfig::fast_demo(), 105);
    for b in &report.bell {
        assert!(b.fidelity > 0.75, "m={}: F {}", b.m, b.fidelity);
        assert!(b.concurrence > 0.4, "m={}: C {}", b.m, b.concurrence);
    }
    // Four-photon visibility above the pairwise visibility (fringe
    // sharpening) and fidelity in the paper's band.
    assert!(report.fringe.visibility > 0.8);
    assert!(report.tomography.fidelity > 0.5 && report.tomography.fidelity < 0.8);
}

#[test]
fn all_reports_render_nonempty_tables() {
    let source = QfcSource::paper_device();
    let heralded = run_heralded_experiment(&source, &HeraldedConfig::fast_demo(), 106);
    let text = heralded.to_report().render();
    assert!(text.contains("| F2"));
    assert!(text.lines().count() > 5);
}
