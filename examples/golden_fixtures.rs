//! Regenerates the byte-identity golden fixtures under `tests/golden/`.
//!
//! The fixtures pin the exact JSON output of every shot-based kernel that
//! the zero-allocation rework touches (categorical sampling, MLE RρR,
//! bootstrap resampling, detector/timetag pipelines). They were generated
//! from the pre-rework tree and must never change: `tests/byte_identity.rs`
//! fails if any kernel drifts by a single byte.
//!
//! Run from the workspace root: `cargo run --release --example golden_fixtures`

use std::fs;
use std::path::Path;

use qfc::core::heralded::{run_heralded_experiment, HeraldedConfig};
use qfc::core::multiphoton::{run_four_photon_tomography, MultiPhotonConfig};
use qfc::core::source::QfcSource;
use qfc::core::timebin::{run_timebin_event_mc, TimeBinConfig};
use qfc::quantum::bell::{bell_phi_plus, werner_state};
use qfc::quantum::fidelity::fidelity_with_pure;
use qfc::tomography::bootstrap::bootstrap_functional;
use qfc::tomography::counts::simulate_counts_seeded;
use qfc::tomography::rank1::{
    deterministic_bases, exact_counts_repr, synthetic_low_rank_state, try_mle_repr,
    ProjectorReprSet,
};
use qfc::tomography::reconstruct::{mle_reconstruction, MleOptions};
use qfc::tomography::settings::all_settings;

fn write_fixture(dir: &Path, name: &str, json: &str) {
    let path = dir.join(name);
    fs::write(&path, json).expect("write fixture");
    println!("wrote {} ({} bytes)", path.display(), json.len());
}

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    fs::create_dir_all(&dir).expect("create tests/golden");
    let source = QfcSource::paper_device();

    // §IV event Monte Carlo: the 10-way categorical slot draw.
    let tb_source = QfcSource::paper_device_timebin();
    let mut tb = TimeBinConfig::fast_demo();
    tb.frames_per_point = 200_000;
    let phases: Vec<f64> = (0..6).map(|k| 0.3 * f64::from(k)).collect();
    let scan = run_timebin_event_mc(&tb_source, &tb, 1, &phases, 11);
    write_fixture(&dir, "timebin_event_mc.json", &serde_json::to_string(&scan).expect("json"));

    // §V two-qubit tomography counts: the per-setting categorical draw.
    let truth = werner_state(0.83, 0.0);
    let settings = all_settings(2);
    let data = simulate_counts_seeded(&truth, &settings, 500, 17);
    write_fixture(&dir, "tomography_counts.json", &serde_json::to_string(&data).expect("json"));

    // MLE RρR reconstruction of those counts.
    let mle = mle_reconstruction(&data, &MleOptions::default());
    write_fixture(&dir, "mle_reconstruction.json", &serde_json::to_string(&mle).expect("json"));

    // Rank-1 + packed-GEMM qudit MLE (the large-d fast path). This is a
    // *new* path pinning its *own* baseline — deterministic and bitwise
    // thread-invariant, but intentionally not byte-comparable to the
    // classic dense fixture above.
    let qudit_truth = synthetic_low_rank_state(8, 2, 5).expect("synthetic state");
    let qudit_bases = deterministic_bases(8, 9, 21).expect("bases");
    let qudit_set = ProjectorReprSet::try_rank1_from_bases(&qudit_bases).expect("set");
    let qudit_counts = exact_counts_repr(&qudit_truth, &qudit_set, 200_000).expect("counts");
    let qudit_opts = MleOptions {
        max_iterations: 60,
        tolerance: 1e-9,
        ..MleOptions::default()
    };
    let qudit = try_mle_repr(&qudit_set, &qudit_counts, &qudit_opts).expect("rank-1 MLE");
    write_fixture(&dir, "qudit_mle_rank1.json", &serde_json::to_string(&qudit).expect("json"));

    // Bootstrap error bar over MLE re-reconstructions (resampling + MLE).
    let target = bell_phi_plus();
    let opts = MleOptions {
        max_iterations: 50,
        tolerance: 1e-8,
        ..MleOptions::default()
    };
    let boot = bootstrap_functional(
        23,
        &data,
        6,
        |d| mle_reconstruction(d, &opts).rho,
        |rho| fidelity_with_pure(rho, &target),
    );
    write_fixture(&dir, "bootstrap_mle.json", &serde_json::to_string(&boot).expect("json"));

    // §II heralded pipeline: detector (efficiency/jitter/darks/dead-time),
    // coincidence counting, CAR, linewidth fit.
    let mut hc = HeraldedConfig::fast_demo();
    hc.duration_s = 1.0;
    hc.channels = 2;
    let heralded = run_heralded_experiment(&source, &hc, 7);
    write_fixture(&dir, "heralded.json", &serde_json::to_string(&heralded).expect("json"));

    // §V four-photon tomography: 81-setting counts + dim-16 MLE.
    let four = run_four_photon_tomography(&tb_source, &MultiPhotonConfig::fast_demo(), 13);
    write_fixture(&dir, "four_photon.json", &serde_json::to_string(&four).expect("json"));
}
