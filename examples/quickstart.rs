//! Quickstart: build the paper's device, inspect it, and run a fast
//! heralded-photon experiment.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qfc::core::heralded::{run_heralded_experiment, HeraldedConfig};
use qfc::core::source::QfcSource;
use qfc::photonics::waveguide::Polarization;

fn main() {
    // The integrated quantum frequency comb of Reimer et al. (DATE 2017):
    // a Hydex microring with 200-GHz FSR and 110-MHz linewidth.
    let source = QfcSource::paper_device();
    let ring = source.ring();

    println!("== Device ==");
    println!("radius            : {:.1} um", ring.radius() * 1e6);
    println!("FSR (TE)          : {}", ring.fsr(Polarization::Te));
    println!("loaded linewidth  : {}", ring.linewidth());
    println!("loaded Q          : {:.2e}", ring.q_loaded());
    println!("finesse           : {:.0}", ring.finesse());
    println!("field enhancement : {:.0}x", ring.field_enhancement_power());

    println!("\n== Comb (first 5 channel pairs) ==");
    for pair in source.comb(5).pairs() {
        println!(
            "m = {}: signal {} ({}-band) / idler {} ({}-band)",
            pair.m,
            pair.signal.frequency,
            pair.signal.band,
            pair.idler.frequency,
            pair.idler.band
        );
    }

    println!("\n== Fast heralded-photon run (SNSPD demo detectors) ==");
    let report = run_heralded_experiment(&source, &HeraldedConfig::fast_demo(), 2026);
    for c in &report.channels {
        println!(
            "m = {}: pair rate {:>6.1} Hz inferred, coincidences {:>6.2} Hz, CAR {:>6.1}",
            c.m, c.inferred_pair_rate_hz, c.coincidence_rate_hz, c.car
        );
    }
    println!(
        "linewidth from coincidence decay: {:.1} MHz (paper: 110 MHz)",
        report.linewidth.linewidth_hz / 1e6
    );
    println!("\n{}", report.to_report().render());
}
