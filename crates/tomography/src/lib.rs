//! # qfc-tomography
//!
//! Quantum state tomography substrate of the `qfc` workspace: Pauli-basis
//! measurement settings (realized for time-bin qubits by arrival time and
//! analyzer phases), simulated projective counts, linear-inversion
//! reconstruction, and the iterative RρR maximum-likelihood algorithm used
//! for the paper's §V fidelity numbers.
//!
//! ## Example
//!
//! ```
//! use qfc_tomography::settings::all_settings;
//! use qfc_tomography::counts::exact_counts;
//! use qfc_tomography::reconstruct::linear_reconstruction;
//! use qfc_quantum::bell::bell_phi_plus;
//! use qfc_quantum::density::DensityMatrix;
//! use qfc_quantum::fidelity::state_fidelity;
//!
//! let truth = DensityMatrix::from_pure(&bell_phi_plus());
//! let data = exact_counts(&truth, &all_settings(2), 1_000_000);
//! let rec = linear_reconstruction(&data);
//! assert!(state_fidelity(&rec, &truth) > 0.999);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bootstrap;
pub mod counts;
pub mod rank1;
pub mod reconstruct;
pub mod settings;
pub mod stream;

pub use counts::{exact_counts, simulate_counts, TomographyData};
pub use rank1::{
    deterministic_bases, exact_counts_repr, synthetic_low_rank_state, try_mle_repr,
    ProjectorRepr, ProjectorReprSet,
};
pub use reconstruct::{
    linear_reconstruction, mle_reconstruction, try_mle_reconstruction, MleAcceleration,
    MleOptions, MleResult,
};
pub use settings::{all_settings, PauliBasis, Setting};
pub use stream::{try_stream_counts_seeded, CountAccumulator};
