//! Self-hosting: qfc-lint's own sources must pass qfc-lint. The tool is
//! in-scope for every rule it enforces (its crate name appears in the
//! rule scope lists like any other library crate).

use std::fs;
use std::path::{Path, PathBuf};

use qfc_lint::lint_source;

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read src dir")
        .map(|e| e.expect("entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

#[test]
fn qfc_lint_is_clean_on_its_own_source() {
    let src_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut files = Vec::new();
    collect_rs(&src_dir, &mut files);
    assert!(
        files.len() >= 5,
        "expected the full module set, got {files:?}"
    );

    let mut all = Vec::new();
    for path in &files {
        let text = fs::read_to_string(path).expect("read source");
        let rel = path.display().to_string();
        all.extend(lint_source("qfc-lint", &rel, &text).findings);
    }
    assert!(
        all.is_empty(),
        "qfc-lint does not pass its own rules:\n{}",
        all.iter()
            .map(|f| format!("  {}:{} [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
