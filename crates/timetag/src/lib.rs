//! # qfc-timetag
//!
//! Detection substrate of the `qfc` workspace: single-photon detector
//! models (efficiency, dark counts, jitter, dead time), a time-to-digital
//! converter, time-tag streams, and the coincidence analyses (windowed
//! counting, CAR, cross-correlation histograms, linewidth extraction) that
//! produce the paper's §II–III observables.
//!
//! ## Example
//!
//! ```
//! use qfc_timetag::events::TagStream;
//! use qfc_timetag::coincidence::count_coincidences;
//!
//! let a = TagStream::from_unsorted(vec![100, 200]);
//! let b = TagStream::from_unsorted(vec![103, 250]);
//! assert_eq!(count_coincidences(&a, &b, 10, 0), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coincidence;
pub mod detector;
pub mod events;
pub mod gated;
pub mod hbt;
pub mod tdc;

pub use coincidence::{measure_car, CarResult};
pub use detector::SinglePhotonDetector;
pub use events::{ChannelId, TagStream, TimeTag};
pub use tdc::Tdc;
