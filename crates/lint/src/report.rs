//! Canonical report rendering: a human-readable text report and a
//! byte-stable machine-readable JSON document.
//!
//! Determinism contract: two runs over identical sources produce
//! byte-identical output. Everything is sorted, no timestamps, no
//! absolute paths, no floating-point values.

use std::collections::BTreeMap;

use crate::rules::RULES;
use crate::workspace::RunReport;

/// Renders the machine-readable report (`target/LINT_REPORT.json`).
pub fn to_json(r: &RunReport) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"qfc-lint/2\",\n");
    out.push_str(&format!(
        "  \"tool_version\": {},\n",
        json_str(env!("CARGO_PKG_VERSION"))
    ));
    out.push_str("  \"crates\": [");
    for (i, c) in r.crates.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(c));
    }
    out.push_str("],\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", r.files_scanned));
    out.push_str("  \"rules\": [");
    for (i, rule) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"name\": ");
        out.push_str(&json_str(rule.name));
        out.push_str(", \"allowable\": ");
        out.push_str(if rule.allowable { "true" } else { "false" });
        out.push_str(", \"summary\": ");
        out.push_str(&json_str(&normalize_ws(rule.summary)));
        out.push('}');
    }
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"allow_directives\": {{\"total\": {}, \"used\": {}}},\n",
        r.allows_total, r.allows_used
    ));
    out.push_str("  \"index_audit\": {");
    for (i, (file, count)) in r.index_audit.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&json_str(file));
        out.push_str(&format!(": {count}"));
    }
    if !r.index_audit.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");
    for (key, list) in [("findings", &r.findings), ("advisories", &r.advisories)] {
        out.push_str(&format!("  \"{key}\": ["));
        for (i, f) in list.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"rule\": ");
            out.push_str(&json_str(f.rule));
            out.push_str(", \"file\": ");
            out.push_str(&json_str(&f.file));
            out.push_str(&format!(
                ", \"line\": {}, \"col\": {}, \"message\": ",
                f.line, f.col
            ));
            out.push_str(&json_str(&f.message));
            out.push_str(", \"snippet\": ");
            out.push_str(&json_str(&f.snippet));
            out.push('}');
        }
        if !list.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
    }
    out.push_str(&format!(
        "  \"callgraph\": {{\"nodes\": {}, \"edges\": {}, \"entry_points\": {}, \
         \"panic_sites\": {}, \"reachable_panic_sites\": {}, \"par_reachable_fns\": {}, \
         \"index_sites\": {}}},\n",
        r.graph.nodes,
        r.graph.edges,
        r.graph.entry_points,
        r.graph.panic_sites,
        r.graph.reachable_panic_sites,
        r.graph.par_reachable_fns,
        r.graph.index_sites,
    ));
    let by_rule = count_by_rule(r);
    out.push_str("  \"summary\": {");
    out.push_str(&format!("\"total\": {}", r.findings.len()));
    for (rule, count) in &by_rule {
        out.push_str(&format!(", {}: {}", json_str(rule), count));
    }
    out.push_str("}\n");
    out.push_str("}\n");
    out
}

/// Renders the human report printed to stdout.
pub fn to_human(r: &RunReport) -> String {
    let mut out = String::new();
    for f in &r.findings {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            f.file, f.line, f.col, f.rule, f.message
        ));
        if !f.snippet.is_empty() {
            out.push_str(&format!("    | {}\n", f.snippet));
        }
    }
    let by_rule = count_by_rule(r);
    out.push_str(&format!(
        "qfc-lint: {} finding(s) across {} file(s) in {} crate(s); \
         {} of {} allow directive(s) in use\n",
        r.findings.len(),
        r.files_scanned,
        r.crates.len(),
        r.allows_used,
        r.allows_total
    ));
    out.push_str(&format!(
        "  call graph: {} fn(s), {} edge(s), {} entry point(s); {} of {} panic \
         site(s) reachable from public API; {} fn(s) on parallel paths\n",
        r.graph.nodes,
        r.graph.edges,
        r.graph.entry_points,
        r.graph.reachable_panic_sites,
        r.graph.panic_sites,
        r.graph.par_reachable_fns,
    ));
    if !r.advisories.is_empty() {
        out.push_str(&format!(
            "  advisories (relaxed profile, non-fatal): {}\n",
            r.advisories.len()
        ));
    }
    if !by_rule.is_empty() {
        let parts: Vec<String> = by_rule
            .iter()
            .map(|(rule, count)| format!("{rule}: {count}"))
            .collect();
        out.push_str(&format!("  by rule: {}\n", parts.join(", ")));
    }
    let audited: u64 = r.index_audit.values().sum();
    out.push_str(&format!(
        "  slice-index audit: {audited} indexing expression(s) outside tests \
         (informational)\n"
    ));
    out
}

fn count_by_rule(r: &RunReport) -> BTreeMap<&'static str, usize> {
    let mut by_rule: BTreeMap<&'static str, usize> = BTreeMap::new();
    for f in &r.findings {
        *by_rule.entry(f.rule).or_insert(0) += 1;
    }
    by_rule
}

/// Collapses the multi-line indentation of raw string summaries.
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Minimal JSON string escaping (RFC 8259): quotes, backslashes, and
/// control characters; everything else passes through as UTF-8.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("em—dash"), "\"em—dash\"");
    }

    #[test]
    fn empty_report_is_valid_and_stable() {
        let r = RunReport {
            crates: vec!["qfc-core".to_string()],
            files_scanned: 0,
            findings: Vec::new(),
            advisories: Vec::new(),
            index_audit: BTreeMap::new(),
            allows_total: 0,
            allows_used: 0,
            callgraph: String::new(),
            graph: crate::callgraph::GraphSummary::default(),
        };
        let a = to_json(&r);
        let b = to_json(&r);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"qfc-lint/2\""));
        assert!(a.contains("\"advisories\": []"));
        assert!(a.contains("\"total\": 0"));
        assert!(a.ends_with("}\n"));
    }
}
