//! Coincidence analysis: windowed counting, start–stop histograms, and
//! the coincidence-to-accidental ratio (CAR) — the §II–III figures of
//! merit.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_faults::{QfcError, QfcResult};
use qfc_mathkit::fit::try_fit_exponential_decay;
use qfc_mathkit::stats::Histogram;

use crate::events::TagStream;

/// Counts coincidences between two sorted streams: pairs with
/// `|t_b − t_a − offset| ≤ window/2`, each event used at most once
/// (greedy two-pointer matching).
///
/// # Panics
///
/// Panics if `window_ps < 0`.
pub fn count_coincidences(a: &TagStream, b: &TagStream, window_ps: i64, offset_ps: i64) -> u64 {
    assert!(window_ps >= 0, "window must be non-negative");
    let half = window_ps / 2;
    let (ta, tb) = (a.as_slice(), b.as_slice());
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < ta.len() && j < tb.len() {
        let delta = tb[j] - ta[i] - offset_ps;
        if delta < -half {
            j += 1;
        } else if delta > half {
            i += 1;
        } else {
            count += 1;
            i += 1;
            j += 1;
        }
    }
    qfc_obs::counter_add("coincidences_counted", count);
    count
}

/// Start–stop cross-correlation histogram of delays `t_b − t_a` within
/// `±range_ps`, binned at `bin_ps` — the §II time-resolved coincidence
/// measurement.
///
/// # Panics
///
/// Panics if `range_ps <= 0` or `bin_ps <= 0`.
pub fn cross_correlation_histogram(
    a: &TagStream,
    b: &TagStream,
    range_ps: i64,
    bin_ps: i64,
) -> Histogram {
    assert!(range_ps > 0, "range must be positive");
    assert!(bin_ps > 0, "bin width must be positive");
    let bins = cast::i64_to_usize((2 * range_ps / bin_ps).max(1));
    let lo = -(cast::to_f64(range_ps));
    let hi = cast::to_f64(range_ps);
    let (ta, tb) = (a.as_slice(), b.as_slice());

    // Shard the start tags into a fixed number of chunks (independent of
    // the thread count). Each shard runs a two-pointer sorted-merge
    // sweep over its slice of `ta` — both window edges advance
    // monotonically, so each `tb` comparison happens once per edge —
    // binning into a local count vector with the same float arithmetic
    // as `Histogram::add_weighted`. Bin counts merge by exact integer
    // addition, so the sharding cannot change the result.
    let chunk_size = ta.len().div_ceil(cast::u64_to_usize(qfc_runtime::SHOT_SHARDS)).max(1);
    let shards = qfc_runtime::par_chunks(ta, chunk_size, |_, chunk| {
        let mut counts = vec![0u64; bins];
        let mut overflow = 0u64;
        // (hi - lo) / bins reproduces Histogram::bin_width exactly.
        let width = (hi - lo) / cast::to_f64(bins);
        let first = match chunk.first() {
            Some(&t) => t,
            None => return (counts, overflow),
        };
        let mut win_lo = tb.partition_point(|&x| x < first - range_ps);
        let mut win_hi = win_lo;
        for &t in chunk {
            while win_lo < tb.len() && tb[win_lo] < t - range_ps {
                win_lo += 1;
            }
            if win_hi < win_lo {
                win_hi = win_lo;
            }
            while win_hi < tb.len() && tb[win_hi] <= t + range_ps {
                win_hi += 1;
            }
            for &tb_j in &tb[win_lo..win_hi] {
                let delta = cast::to_f64(tb_j - t);
                // Same in-range test and index arithmetic as
                // Histogram::add_weighted; delta == +range lands in the
                // overflow bucket there too ([lo, hi) bins).
                if delta >= hi {
                    overflow += 1;
                } else {
                    let idx = cast::f64_to_usize((delta - lo) / width);
                    counts[idx.min(bins - 1)] += 1;
                }
            }
        }
        (counts, overflow)
    });

    let mut counts = vec![0u64; bins];
    let mut overflow = 0u64;
    for (shard_counts, shard_overflow) in shards {
        for (dst, src) in counts.iter_mut().zip(&shard_counts) {
            *dst += src;
        }
        overflow += shard_overflow;
    }
    Histogram::from_parts(lo, hi, counts, 0, overflow)
}

/// Result of a CAR measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CarResult {
    /// True coincidences in the zero-delay window.
    pub coincidences: u64,
    /// Mean accidentals per window, from offset windows.
    pub accidentals: f64,
    /// Coincidence-to-accidental ratio. `f64::INFINITY` when no
    /// accidentals were observed.
    pub car: f64,
}

/// Measures the CAR: coincidences in the zero-delay window divided by the
/// mean of coincidences in `n_offsets` displaced windows (spaced by
/// `offset_step_ps`, starting one step away from zero delay).
///
/// # Panics
///
/// Panics if `n_offsets == 0` or `offset_step_ps <= window_ps`.
pub fn measure_car(
    a: &TagStream,
    b: &TagStream,
    window_ps: i64,
    offset_step_ps: i64,
    n_offsets: usize,
) -> CarResult {
    assert!(n_offsets > 0, "need at least one accidental window");
    assert!(
        offset_step_ps > window_ps,
        "offset step must exceed the window"
    );
    // The zero-delay window and every displaced window are independent
    // scans; run them all on the worker pool. Summing u64 counts is
    // exact, so the parallel split cannot perturb the result.
    let offsets: Vec<i64> = (0..=cast::usize_to_i64(n_offsets)).map(|k| k * offset_step_ps).collect();
    let counts = qfc_runtime::par_map(&offsets, |&off| count_coincidences(a, b, window_ps, off));
    let coincidences = counts[0];
    let acc_total: u64 = counts[1..].iter().sum();
    let accidentals = cast::to_f64(acc_total) / cast::to_f64(n_offsets);
    let car = if accidentals > 0.0 {
        cast::to_f64(coincidences) / accidentals
    } else if coincidences > 0 {
        f64::INFINITY
    } else {
        0.0
    };
    CarResult {
        coincidences,
        accidentals,
        car,
    }
}

/// Finds the relative delay between two streams by locating the peak of
/// their cross-correlation — the cable/path-length calibration every
/// real coincidence setup performs first.
///
/// Returns `None` when no correlation peak stands out (peak below
/// `3 + 2·√floor` over the median bin count).
pub fn find_delay(a: &TagStream, b: &TagStream, range_ps: i64, bin_ps: i64) -> Option<i64> {
    let hist = cross_correlation_histogram(a, b, range_ps, bin_ps);
    let (idx, peak) = hist.peak()?;
    let mut counts: Vec<u64> = hist.counts().to_vec();
    counts.sort_unstable();
    let median = cast::to_f64(counts[counts.len() / 2]);
    if (cast::to_f64(peak)) < median + 3.0 + 2.0 * median.sqrt() {
        return None;
    }
    Some(cast::f64_to_i64(hist.bin_center(idx)))
}

/// Result of extracting a photon-pair coherence time (and thus linewidth)
/// from a time-resolved coincidence histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinewidthResult {
    /// Fitted two-sided exponential decay constant, s.
    pub decay_time_s: f64,
    /// Inferred Lorentzian linewidth `Δν = 1/(2π·τ)`, Hz.
    pub linewidth_hz: f64,
    /// R² of the decay fit.
    pub r_squared: f64,
}

/// Fits the two-sided exponential decay of a coincidence histogram and
/// converts it to a linewidth — the §II analysis yielding Δν = 110 MHz.
///
/// The histogram's positive- and negative-delay wings are folded and fit
/// jointly; the baseline (mean of the outermost 10 % of bins) is
/// subtracted as the accidental floor.
///
/// # Panics
///
/// Panics if the histogram has no peak.
pub fn extract_linewidth(hist: &Histogram) -> LinewidthResult {
    match try_extract_linewidth(hist) {
        Ok(r) => r,
        Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// Fallible form of [`extract_linewidth`]: an empty histogram or a
/// degenerate decay fit becomes a [`QfcError`] instead of a panic, so a
/// supervisor can retry with longer integration.
pub fn try_extract_linewidth(hist: &Histogram) -> QfcResult<LinewidthResult> {
    let Some((peak_idx, _)) = hist.peak() else {
        return Err(QfcError::InsufficientData {
            context: "linewidth extraction: histogram has no counts".to_owned(),
        });
    };
    let bins = hist.bins();
    // Accidental floor from the edges.
    let edge = (bins / 10).max(1);
    let mut floor = 0.0;
    for i in 0..edge {
        floor += cast::to_f64(hist.count(i)) + cast::to_f64(hist.count(bins - 1 - i));
    }
    floor /= cast::to_f64(2 * edge);

    // Fold both wings around the peak.
    let mut t: Vec<f64> = Vec::new();
    let mut y: Vec<f64> = Vec::new();
    for i in 0..bins {
        let dt = (hist.bin_center(i) - hist.bin_center(peak_idx)).abs() * 1e-12; // ps → s
        let v = cast::to_f64(hist.count(i)) - floor;
        if v > 0.0 {
            t.push(dt);
            y.push(v);
        }
    }
    let fit = try_fit_exponential_decay(&t, &y)?;
    Ok(LinewidthResult {
        decay_time_s: fit.tau,
        linewidth_hz: 1.0 / (2.0 * std::f64::consts::PI * fit.tau),
        r_squared: fit.r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfc_mathkit::rng::{exponential, rng_from_seed};
    use rand::Rng;

    #[test]
    fn exact_coincidences_counted() {
        let a = TagStream::from_unsorted(vec![100, 200, 300]);
        let b = TagStream::from_unsorted(vec![105, 250, 301]);
        // Window ±10 ps: 100↔105 and 300↔301 match.
        assert_eq!(count_coincidences(&a, &b, 20, 0), 2);
        // Window ±1: only nothing (105−100 = 5 > 1, 301−300 = 1 ≤ 1... half = 0)
        assert_eq!(count_coincidences(&a, &b, 2, 0), 1);
    }

    #[test]
    fn each_event_used_once() {
        let a = TagStream::from_unsorted(vec![100]);
        let b = TagStream::from_unsorted(vec![99, 101, 102]);
        assert_eq!(count_coincidences(&a, &b, 10, 0), 1);
    }

    #[test]
    fn offset_window_finds_displaced_pairs() {
        let a = TagStream::from_unsorted(vec![100, 200]);
        let b = TagStream::from_unsorted(vec![1100, 1200]);
        assert_eq!(count_coincidences(&a, &b, 10, 0), 0);
        assert_eq!(count_coincidences(&a, &b, 10, 1000), 2);
    }

    #[test]
    fn histogram_centers_delays() {
        let a = TagStream::from_unsorted(vec![1000, 2000, 3000]);
        let b = TagStream::from_unsorted(vec![1050, 2050, 3050]);
        let h = cross_correlation_histogram(&a, &b, 500, 100);
        let (idx, count) = h.peak().expect("peak exists");
        assert_eq!(count, 3);
        assert!((h.bin_center(idx) - 50.0).abs() <= 50.0);
    }

    #[test]
    fn car_of_correlated_streams_is_high() {
        let mut rng = rng_from_seed(7);
        // 1000 correlated pairs + uniform noise on both channels.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..1000 {
            let t = (rng.gen::<f64>() * 1e12) as i64;
            a.push(t);
            b.push(t + 5);
        }
        for _ in 0..300 {
            a.push((rng.gen::<f64>() * 1e12) as i64);
            b.push((rng.gen::<f64>() * 1e12) as i64);
        }
        let sa = TagStream::from_unsorted(a);
        let sb = TagStream::from_unsorted(b);
        let r = measure_car(&sa, &sb, 200, 10_000, 10);
        assert!(r.coincidences >= 1000);
        assert!(r.car > 50.0, "CAR = {}", r.car);
    }

    #[test]
    fn car_of_uncorrelated_streams_near_one() {
        let mut rng = rng_from_seed(8);
        let a: Vec<i64> = (0..200_000).map(|_| (rng.gen::<f64>() * 1e12) as i64).collect();
        let b: Vec<i64> = (0..200_000).map(|_| (rng.gen::<f64>() * 1e12) as i64).collect();
        let sa = TagStream::from_unsorted(a);
        let sb = TagStream::from_unsorted(b);
        let r = measure_car(&sa, &sb, 1000, 100_000, 8);
        assert!((r.car - 1.0).abs() < 0.3, "CAR = {}", r.car);
    }

    #[test]
    fn linewidth_extraction_recovers_decay() {
        let mut rng = rng_from_seed(9);
        // Pairs with exponential |Δt| of τ = 1.45 ns (110 MHz linewidth).
        let tau_s = 1.45e-9;
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..60_000 {
            let t = (rng.gen::<f64>() * 1e15) as i64;
            let dt = exponential(&mut rng, 1.0 / tau_s) * 1e12;
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            a.push(t);
            b.push(t + (sign * dt) as i64);
        }
        let h = cross_correlation_histogram(
            &TagStream::from_unsorted(a),
            &TagStream::from_unsorted(b),
            15_000,
            250,
        );
        let r = extract_linewidth(&h);
        assert!(
            (r.linewidth_hz - 110e6).abs() / 110e6 < 0.1,
            "Δν = {} MHz",
            r.linewidth_hz / 1e6
        );
        assert!(r.r_squared > 0.9);
    }

    #[test]
    fn find_delay_recovers_cable_offset() {
        let mut rng = rng_from_seed(10);
        let true_delay = 12_345i64;
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..5_000 {
            let t = (rng.gen::<f64>() * 1e12) as i64;
            a.push(t);
            b.push(t + true_delay);
        }
        let sa = TagStream::from_unsorted(a);
        let sb = TagStream::from_unsorted(b);
        let found = find_delay(&sa, &sb, 50_000, 500).expect("clear peak");
        assert!((found - true_delay).abs() <= 500, "found {found}");
    }

    #[test]
    fn find_delay_rejects_uncorrelated_streams() {
        // Keep the accidental density low enough that a spurious ≥3-count
        // bin is a many-sigma event rather than a coin flip: 10k tags over
        // 1e12 ps give ~0.05 expected counts per 500 ps bin.
        let mut rng = rng_from_seed(11);
        let a: Vec<i64> = (0..10_000).map(|_| (rng.gen::<f64>() * 1e12) as i64).collect();
        let b: Vec<i64> = (0..10_000).map(|_| (rng.gen::<f64>() * 1e12) as i64).collect();
        let found = find_delay(
            &TagStream::from_unsorted(a),
            &TagStream::from_unsorted(b),
            50_000,
            500,
        );
        assert!(found.is_none(), "spurious delay {found:?}");
    }

    #[test]
    #[should_panic(expected = "offset step")]
    fn car_rejects_overlapping_offsets() {
        let s = TagStream::from_unsorted(vec![1, 2, 3]);
        let _ = measure_car(&s, &s, 100, 50, 3);
    }

    #[test]
    fn empty_streams_zero() {
        let e = TagStream::new();
        assert_eq!(count_coincidences(&e, &e, 100, 0), 0);
        let r = measure_car(&e, &e, 100, 1000, 3);
        assert_eq!(r.coincidences, 0);
        assert_eq!(r.car, 0.0);
    }
}
