//! The integrated quantum frequency comb source — the paper's central
//! object: one microring, many quantum-state families, selected purely by
//! the pump configuration.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_faults::{QfcError, QfcResult};
use qfc_photonics::comb::CombGrid;
use qfc_photonics::fwm;
use qfc_photonics::pump::PumpConfig;
use qfc_photonics::ring::{Microring, MicroringBuilder};
use qfc_photonics::units::{Frequency, Power};
use qfc_photonics::waveguide::{Polarization, Waveguide};
use qfc_quantum::fock::TwoModeSqueezedVacuum;

/// What family of quantum states the source emits under its current pump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmissionRegime {
    /// §II — multiplexed heralded single photons (CW pumping).
    HeraldedSinglePhotons,
    /// §III — cross-polarized photon pairs (bichromatic TE/TM pumping).
    CrossPolarizedPairs,
    /// §IV–V — time-bin entangled photon pairs (double-pulse pumping).
    TimeBinEntangled,
}

/// The quantum frequency comb: a microring plus a pump configuration and
/// the per-channel collection efficiency of the measurement apparatus.
///
/// # Examples
///
/// ```
/// use qfc_core::source::QfcSource;
///
/// let source = QfcSource::paper_device();
/// // §II channel-1 emission at 15 mW: tens to hundreds of pairs/s.
/// let r = source.pair_rate_cw(1);
/// assert!(r > 1.0 && r < 1e4, "rate {r}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QfcSource {
    ring: Microring,
    pump: PumpConfig,
    /// On-chip coupling efficiency of the pump (facet + mode overlap).
    pub pump_coupling: f64,
    /// Wavelength dependence of the point couplers: relative change of
    /// the power cross-coupling per comb mode (couplers are directional;
    /// their gap transmission varies slowly across the comb). Enters the
    /// per-channel emission rate as `(1 + c·m)²`.
    pub coupling_dispersion_per_mode: f64,
}

impl QfcSource {
    /// The paper's device under its §II pump configuration.
    pub fn paper_device() -> Self {
        Self::new(Microring::paper_device(), PumpConfig::paper_self_locked())
    }

    /// The paper's device with a TE/TM grid offset engaged, under the
    /// §III bichromatic pump.
    pub fn paper_device_type2() -> Self {
        let mut b = MicroringBuilder::new(Waveguide::hydex_paper());
        b.anchor(Frequency::from_thz(193.4))
            .radius_for_fsr(Frequency::from_ghz(200.0))
            .te_tm_offset(Frequency::from_ghz(47.0));
        b.coupling_for_linewidth(Frequency::from_hz(110e6));
        let mut src = Self::new(b.build(), PumpConfig::paper_bichromatic());
        // §III quotes powers in the waveguide (the 14-mW OPO threshold is
        // an on-chip figure), so no extra coupling penalty here.
        src.pump_coupling = 1.0;
        src
    }

    /// The paper's device under the §IV–V double-pulse pump.
    pub fn paper_device_timebin() -> Self {
        Self::new(Microring::paper_device(), PumpConfig::paper_double_pulse())
    }

    /// Creates a source from a ring and pump configuration with the
    /// paper's default coupling budget.
    pub fn new(ring: Microring, pump: PumpConfig) -> Self {
        Self {
            ring,
            pump,
            pump_coupling: 0.28, // ≈5.5 dB: facet coupling + intracavity
            // self-locked arrangement; calibrated so the §II channel
            // rates land in the paper's 14–29 pairs/s window.
            coupling_dispersion_per_mode: -0.055,
        }
    }

    /// The microring.
    pub fn ring(&self) -> &Microring {
        &self.ring
    }

    /// The pump configuration.
    pub fn pump(&self) -> &PumpConfig {
        &self.pump
    }

    /// Replaces the pump configuration (builder-style).
    pub fn with_pump(mut self, pump: PumpConfig) -> Self {
        self.pump = pump;
        self
    }

    /// Short name of the current pump variant, for error messages.
    fn pump_variant_name(&self) -> &'static str {
        match self.pump {
            PumpConfig::SelfLockedCw { .. } => "SelfLockedCw",
            PumpConfig::ExternalCw { .. } => "ExternalCw",
            PumpConfig::BichromaticOrthogonal { .. } => "BichromaticOrthogonal",
            PumpConfig::DoublePulse { .. } => "DoublePulse",
        }
    }

    /// Which state family the current pump produces.
    pub fn regime(&self) -> EmissionRegime {
        match self.pump {
            PumpConfig::SelfLockedCw { .. } | PumpConfig::ExternalCw { .. } => {
                EmissionRegime::HeraldedSinglePhotons
            }
            PumpConfig::BichromaticOrthogonal { .. } => EmissionRegime::CrossPolarizedPairs,
            PumpConfig::DoublePulse { .. } => EmissionRegime::TimeBinEntangled,
        }
    }

    /// The comb grid of channel pairs (TE family) up to `max_m`.
    pub fn comb(&self, max_m: u32) -> CombGrid {
        CombGrid::from_ring(&self.ring, Polarization::Te, max_m)
    }

    /// Per-mode emission scaling from coupler wavelength dependence.
    fn coupler_factor(&self, m: u32) -> f64 {
        let f = 1.0 + self.coupling_dispersion_per_mode * cast::to_f64(m);
        (f.max(0.0)).powi(2)
    }

    /// On-chip pump power after coupling losses for CW-type pumps.
    pub fn coupled_cw_power(&self) -> Power {
        match self.pump {
            PumpConfig::SelfLockedCw { power } | PumpConfig::ExternalCw { power, .. } => {
                power * self.pump_coupling
            }
            PumpConfig::BichromaticOrthogonal { power_te, power_tm } => {
                (power_te + power_tm) * self.pump_coupling
            }
            PumpConfig::DoublePulse { peak_power, .. } => peak_power * self.pump_coupling,
        }
    }

    /// Generated pair flux (pairs/s) on channel pair `m` for the §II CW
    /// configurations.
    ///
    /// # Panics
    ///
    /// Panics if the pump is not a CW configuration or `m == 0`.
    pub fn pair_rate_cw(&self, m: u32) -> f64 {
        match self.try_pair_rate_cw(m) {
            Ok(r) => r,
            Err(e) => panic!("pair_rate_cw requires a CW pump configuration ({e})"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
        }
    }

    /// Fallible form of [`Self::pair_rate_cw`]: returns
    /// [`QfcError::RegimeMismatch`] when the pump is not CW.
    pub fn try_pair_rate_cw(&self, m: u32) -> QfcResult<f64> {
        match self.pump {
            PumpConfig::SelfLockedCw { power } | PumpConfig::ExternalCw { power, .. } => {
                Ok(fwm::pair_rate_cw(
                    &self.ring,
                    Polarization::Te,
                    power * self.pump_coupling,
                    m,
                ) * self.coupler_factor(m))
            }
            _ => Err(QfcError::RegimeMismatch {
                expected: "CW pump configuration".to_owned(),
                actual: self.pump_variant_name().to_owned(),
            }),
        }
    }

    /// Generated cross-polarized pair flux (pairs/s) on channel `m` for
    /// the §III bichromatic pump.
    ///
    /// # Panics
    ///
    /// Panics if the pump is not bichromatic or `m == 0`.
    pub fn type2_pair_rate(&self, m: u32) -> f64 {
        match self.try_type2_pair_rate(m) {
            Ok(r) => r,
            Err(e) => panic!("type2_pair_rate requires the bichromatic pump ({e})"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
        }
    }

    /// Fallible form of [`Self::type2_pair_rate`].
    pub fn try_type2_pair_rate(&self, m: u32) -> QfcResult<f64> {
        match self.pump {
            PumpConfig::BichromaticOrthogonal { power_te, power_tm } => {
                Ok(fwm::type2_pair_rate(
                    &self.ring,
                    power_te * self.pump_coupling,
                    power_tm * self.pump_coupling,
                    m,
                ) * self.coupler_factor(m))
            }
            _ => Err(QfcError::RegimeMismatch {
                expected: "bichromatic orthogonal pump".to_owned(),
                actual: self.pump_variant_name().to_owned(),
            }),
        }
    }

    /// Mean photon pairs per double-pulse frame on channel `m` for the
    /// §IV–V pulsed pump (per *frame*, i.e. summed over both bins).
    ///
    /// # Panics
    ///
    /// Panics if the pump is not a double-pulse configuration.
    pub fn pairs_per_frame(&self, m: u32) -> f64 {
        match self.try_pairs_per_frame(m) {
            Ok(r) => r,
            Err(e) => panic!("pairs_per_frame requires the double-pulse pump ({e})"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
        }
    }

    /// Fallible form of [`Self::pairs_per_frame`].
    pub fn try_pairs_per_frame(&self, m: u32) -> QfcResult<f64> {
        match self.pump {
            PumpConfig::DoublePulse { peak_power, .. } => {
                // Each of the two pulses contributes μ(peak)/2 at half
                // the peak amplitude budget (the writer splits the pump
                // energy across the bins).
                Ok(2.0 * fwm::mean_pairs_per_pulse(
                    &self.ring,
                    Polarization::Te,
                    peak_power * self.pump_coupling * 0.5,
                    m,
                ) * self.coupler_factor(m))
            }
            _ => Err(QfcError::RegimeMismatch {
                expected: "double-pulse pump".to_owned(),
                actual: self.pump_variant_name().to_owned(),
            }),
        }
    }

    /// The photon-number state of channel `m` under the pulsed pump.
    pub fn channel_state(&self, m: u32) -> TwoModeSqueezedVacuum {
        TwoModeSqueezedVacuum::new(self.pairs_per_frame(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_follow_pump() {
        assert_eq!(
            QfcSource::paper_device().regime(),
            EmissionRegime::HeraldedSinglePhotons
        );
        assert_eq!(
            QfcSource::paper_device_type2().regime(),
            EmissionRegime::CrossPolarizedPairs
        );
        assert_eq!(
            QfcSource::paper_device_timebin().regime(),
            EmissionRegime::TimeBinEntangled
        );
    }

    #[test]
    fn cw_rates_in_paper_range() {
        // Generated rates across the five §II channels should land in the
        // ~10–40 pairs/s window the paper infers.
        let src = QfcSource::paper_device();
        for m in 1..=5 {
            let r = src.pair_rate_cw(m);
            assert!(r > 5.0 && r < 80.0, "m={m}: rate {r}");
        }
    }

    #[test]
    fn cw_rates_decrease_with_channel() {
        let src = QfcSource::paper_device();
        let rates: Vec<f64> = (1..=5).map(|m| src.pair_rate_cw(m)).collect();
        assert!(rates.windows(2).all(|w| w[0] > w[1]), "{rates:?}");
        // Span roughly a factor two, like 14–29 Hz.
        let ratio = rates[0] / rates[4];
        assert!(ratio > 1.3 && ratio < 3.5, "ratio {ratio}");
    }

    #[test]
    fn type2_rate_positive_at_2mw() {
        let src = QfcSource::paper_device_type2();
        let r = src.type2_pair_rate(1);
        assert!(r > 0.05 && r < 100.0, "rate {r}");
    }

    #[test]
    fn pulsed_mu_in_low_gain_regime() {
        let src = QfcSource::paper_device_timebin();
        let mu = src.pairs_per_frame(1);
        assert!(mu > 1e-5 && mu < 0.2, "μ = {mu}");
        assert!((src.channel_state(1).mean_pairs() - mu).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "CW pump")]
    fn cw_rate_needs_cw_pump() {
        let _ = QfcSource::paper_device_timebin().pair_rate_cw(1);
    }

    #[test]
    fn try_rates_report_regime_mismatch() {
        let timebin = QfcSource::paper_device_timebin();
        let err = timebin.try_pair_rate_cw(1).unwrap_err();
        assert!(matches!(err, QfcError::RegimeMismatch { .. }));
        assert!(err.to_string().contains("CW pump"));
        assert!(timebin.try_type2_pair_rate(1).is_err());
        assert!(timebin.try_pairs_per_frame(1).is_ok());
        let cw = QfcSource::paper_device();
        assert!(cw.try_pair_rate_cw(1).is_ok());
        assert!(cw.try_pairs_per_frame(1).is_err());
    }

    #[test]
    fn comb_has_requested_channels() {
        let src = QfcSource::paper_device();
        assert_eq!(src.comb(5).len(), 5);
    }

    #[test]
    fn with_pump_switches_regime() {
        let src = QfcSource::paper_device().with_pump(PumpConfig::paper_double_pulse());
        assert_eq!(src.regime(), EmissionRegime::TimeBinEntangled);
    }
}
