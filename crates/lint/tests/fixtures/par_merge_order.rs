//@ crate: qfc-core
// Parallel closures must be pure shard kernels: no captured-accumulator
// mutation, no shared-state primitives, and order-sensitive merges are
// confined to the deterministic shard-index fold.

pub fn captured_accumulator(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    par_map(xs, |x| {
        total += x; //~ ERROR par-merge-order
        0.0
    });
    total
}

pub fn closure_local_is_fine(xs: &[f64]) {
    par_map(xs, |x| {
        let mut acc = 0.0;
        acc += x;
        acc
    });
}

pub fn shared_state_in_closure(xs: &[f64]) {
    par_map(xs, |x| {
        let guard = shared.lock(); //~ ERROR par-merge-order
        *x
    });
}

pub fn order_sensitive_merge(n: u64, seed: u64) -> Vec<f64> {
    par_shots(n, seed, |shard| vec![0.0_f64; 1], |mut acc: Vec<Vec<f64>>| {
        let _last = acc.pop(); //~ ERROR par-merge-order
        Vec::new()
    })
}

pub fn index_ordered_merge(n: u64, seed: u64) -> Vec<f64> {
    par_shots(n, seed, |shard| vec![0.0_f64; 1], |acc: Vec<Vec<f64>>| {
        acc.into_iter().flatten().collect()
    })
}
