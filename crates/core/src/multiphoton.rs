//! §V — Multi-photon entangled states.
//!
//! Reproduces:
//!
//! * **T3** — quantum state tomography of the per-channel Bell states
//!   ("confirmed generation of qubit entangled Bell states");
//! * **F8** — four-photon quantum interference with 89 % raw visibility;
//! * **T4** — four-photon state tomography with 64 % fidelity to the
//!   ideal two-Bell-pair product.

use serde::{Deserialize, Serialize};

use qfc_mathkit::fit::raw_visibility;
use qfc_mathkit::rng::{binomial, rng_from_seed, split_seed};
use qfc_quantum::bell::{bell_phi, concurrence};
use qfc_quantum::fidelity::fidelity_with_pure;
use qfc_quantum::multiphoton::{four_photon_fringe_point, four_photon_product, noisy_four_photon};
use qfc_tomography::counts::simulate_counts_seeded;
use qfc_tomography::reconstruct::{mle_reconstruction, MleOptions};
use qfc_tomography::settings::all_settings;

use crate::report::{Comparison, Expectation, ExperimentReport};
use crate::source::QfcSource;
use crate::timebin::{channel_state_model, channel_state_model_boosted, TimeBinConfig};

/// Configuration of the §V multi-photon runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiPhotonConfig {
    /// Underlying time-bin operating point (state model per channel).
    pub timebin: TimeBinConfig,
    /// Two-photon tomography: coincidences collected per setting.
    pub bell_shots_per_setting: u64,
    /// Four-photon fringe: frames per phase point.
    pub four_fold_frames_per_point: u64,
    /// Four-photon fringe: phase points.
    pub four_fold_phase_steps: usize,
    /// Four-photon tomography: four-folds collected per setting.
    pub four_shots_per_setting: u64,
    /// White-noise fraction of the four-photon state (higher-order pair
    /// emission reaching the four-fold post-selection).
    pub four_fold_white_noise: f64,
    /// Phase-independent accidental fraction of the four-fold counts.
    pub four_fold_accidental_fraction: f64,
    /// Pump *amplitude* boost of the four-photon runs relative to the
    /// §IV operating point (`μ` scales with its square) — the rate vs
    /// visibility trade every four-photon experiment makes.
    pub four_fold_pump_factor: f64,
}

impl MultiPhotonConfig {
    /// The published §V conditions.
    pub fn paper() -> Self {
        Self {
            timebin: TimeBinConfig::paper(),
            bell_shots_per_setting: 2000,
            // ≈ 28 h of frames at 10 MHz per phase point — four-fold
            // rates are low even at the boosted pump (the real runs
            // integrated for days).
            four_fold_frames_per_point: 1_000_000_000_000,
            four_fold_phase_steps: 24,
            four_shots_per_setting: 60,
            four_fold_white_noise: 0.08,
            four_fold_accidental_fraction: 0.02,
            four_fold_pump_factor: 3.0,
        }
    }

    /// Reduced statistics for tests.
    pub fn fast_demo() -> Self {
        Self {
            timebin: TimeBinConfig::fast_demo(),
            bell_shots_per_setting: 500,
            four_fold_frames_per_point: 300_000_000_000,
            four_fold_phase_steps: 16,
            four_shots_per_setting: 40,
            ..Self::paper()
        }
    }
}

/// Result of the per-channel Bell-state tomography (T3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BellTomographyResult {
    /// Channel index.
    pub m: u32,
    /// MLE fidelity with the ideal `|Φ(φ_p)⟩`.
    pub fidelity: f64,
    /// Concurrence of the reconstructed state.
    pub concurrence: f64,
    /// MLE iterations used.
    pub iterations: usize,
}

/// Runs T3: 16-setting two-qubit tomography of each channel's time-bin
/// Bell state, reconstructed with MLE.
pub fn run_bell_tomography(
    source: &QfcSource,
    config: &MultiPhotonConfig,
    seed: u64,
) -> Vec<BellTomographyResult> {
    let settings = all_settings(2);
    let target = bell_phi(config.timebin.pump_phase);
    // Channels are independent tomography runs on split-seed streams;
    // each inner count simulation further splits per setting.
    let channel_ids: Vec<u32> = (1..=config.timebin.channels).collect();
    qfc_runtime::par_map(&channel_ids, |&m| {
        let model = channel_state_model(source, &config.timebin, m);
        // Accidentals appear as white noise in the tomography counts.
        let p_sig = model.mu
            * config.timebin.arm_efficiency.powi(2)
            * 0.125; // mean post-selected coincidence probability scale
        let white = (model.accidental_prob / (model.accidental_prob + p_sig)).clamp(0.0, 1.0);
        let rho = model.rho.depolarize(white);
        let data = simulate_counts_seeded(
            &rho,
            &settings,
            config.bell_shots_per_setting,
            split_seed(seed, u64::from(m)),
        );
        let mle = mle_reconstruction(&data, &MleOptions::default());
        BellTomographyResult {
            m,
            fidelity: fidelity_with_pure(&mle.rho, &target),
            concurrence: concurrence(&mle.rho),
            iterations: mle.iterations,
        }
    })
}

/// Result of the four-photon interference scan (F8).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FourPhotonFringe {
    /// (common analyzer phase, four-fold counts) points.
    pub points: Vec<(f64, u64)>,
    /// Fitted raw visibility (second-harmonic fringe).
    pub visibility: f64,
}

/// Runs F8: all four photons analyzed at a common phase; four-fold
/// coincidences oscillate at the second harmonic.
pub fn run_four_photon_fringe(
    source: &QfcSource,
    config: &MultiPhotonConfig,
    seed: u64,
) -> FourPhotonFringe {
    let mut rng = rng_from_seed(seed);
    let model =
        channel_state_model_boosted(source, &config.timebin, 1, config.four_fold_pump_factor);
    let rho4 = noisy_four_photon(
        config.timebin.pump_phase,
        model.state_visibility,
        config.four_fold_white_noise,
    );
    // Two pairs must be emitted in the same frame; all four photons
    // detected and post-selected.
    let model2 =
        channel_state_model_boosted(source, &config.timebin, 2, config.four_fold_pump_factor);
    let p4_scale = model.mu * model2.mu * config.timebin.arm_efficiency.powi(4);
    // Phase-independent accidental floor, referenced to the fringe mean.
    let mean_point = {
        let steps = 16;
        (0..steps)
            .map(|k| {
                four_photon_fringe_point(
                    &rho4,
                    std::f64::consts::PI * k as f64 / steps as f64,
                )
            })
            .sum::<f64>()
            / steps as f64
    };
    let p_acc = config.four_fold_accidental_fraction * p4_scale * mean_point;

    let mut points = Vec::with_capacity(config.four_fold_phase_steps);
    for k in 0..config.four_fold_phase_steps {
        let phi = std::f64::consts::PI * k as f64 / config.four_fold_phase_steps as f64;
        let p = p4_scale * four_photon_fringe_point(&rho4, phi) + p_acc;
        let counts = binomial(&mut rng, config.four_fold_frames_per_point, p);
        points.push((phi, counts));
    }
    // The four-fold fringe [(1 + V·cos2φ)/2]² is not a pure cosine (it
    // carries a 4φ harmonic), so the honest figure is the
    // background-uncorrected raw visibility (max − min)/(max + min) —
    // exactly what the paper quotes.
    let ys: Vec<f64> = points.iter().map(|&(_, c)| c as f64).collect();
    FourPhotonFringe {
        visibility: raw_visibility(&ys),
        points,
    }
}

/// Result of the four-photon tomography (T4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FourPhotonTomography {
    /// MLE fidelity with the ideal two-Bell-pair product.
    pub fidelity: f64,
    /// MLE iterations used.
    pub iterations: usize,
    /// Total four-fold events used.
    pub total_counts: u64,
}

/// Runs T4: 81-setting four-qubit tomography of the (noisy) four-photon
/// state, reconstructed with MLE.
pub fn run_four_photon_tomography(
    source: &QfcSource,
    config: &MultiPhotonConfig,
    seed: u64,
) -> FourPhotonTomography {
    let model =
        channel_state_model_boosted(source, &config.timebin, 1, config.four_fold_pump_factor);
    let rho4 = noisy_four_photon(
        config.timebin.pump_phase,
        model.state_visibility,
        config.four_fold_white_noise,
    );
    // 81 four-qubit settings, each sampled on its own split-seed stream.
    let settings = all_settings(4);
    let data = simulate_counts_seeded(&rho4, &settings, config.four_shots_per_setting, seed);
    let total = data.grand_total();
    let mle = mle_reconstruction(&data, &MleOptions::default());
    let target = four_photon_product(config.timebin.pump_phase);
    FourPhotonTomography {
        fidelity: fidelity_with_pure(&mle.rho, &target),
        iterations: mle.iterations,
        total_counts: total,
    }
}

/// One row of the pump-power trade scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PumpTradeRow {
    /// Pump amplitude factor relative to the §IV operating point.
    pub pump_factor: f64,
    /// Mean pairs per frame at this pump.
    pub mu: f64,
    /// Pairwise state visibility (multi-pair + phase noise + overlap).
    pub state_visibility: f64,
    /// Relative four-fold rate (∝ μ², normalized to factor 1).
    pub relative_four_fold_rate: f64,
    /// Fidelity of one dephased pair with the ideal Bell state.
    pub pair_fidelity: f64,
}

/// Scans the pump amplitude and reports the rate-vs-quality trade that
/// forces the §V boost: the four-fold rate grows as the fourth power of
/// the pump amplitude while the pairwise visibility (and hence every
/// entanglement figure) degrades.
pub fn pump_trade_scan(
    source: &QfcSource,
    config: &TimeBinConfig,
    factors: &[f64],
) -> Vec<PumpTradeRow> {
    let mu_ref = channel_state_model_boosted(source, config, 1, 1.0).mu;
    factors
        .iter()
        .map(|&f| {
            let model = channel_state_model_boosted(source, config, 1, f);
            let target = bell_phi(config.pump_phase);
            PumpTradeRow {
                pump_factor: f,
                mu: model.mu,
                state_visibility: model.state_visibility,
                relative_four_fold_rate: (model.mu / mu_ref).powi(2),
                pair_fidelity: fidelity_with_pure(&model.rho, &target),
            }
        })
        .collect()
}

/// Aggregated §V report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiPhotonReport {
    /// T3 per-channel Bell tomography.
    pub bell: Vec<BellTomographyResult>,
    /// F8 fringe.
    pub fringe: FourPhotonFringe,
    /// T4 tomography.
    pub tomography: FourPhotonTomography,
}

impl MultiPhotonReport {
    /// Comparison rows (paper: entangled Bell states confirmed; 89 %
    /// four-photon visibility; 64 % four-photon fidelity).
    pub fn to_report(&self) -> ExperimentReport {
        let mut r = ExperimentReport::new("§V multi-photon entangled states (T3/F8/T4)");
        let min_c = self
            .bell
            .iter()
            .map(|b| b.concurrence)
            .fold(f64::INFINITY, f64::min);
        r.push(Comparison::new(
            "T3",
            "min channel Bell concurrence (entangled > 0)",
            0.5,
            min_c,
            "",
            Expectation::AtLeast,
        ));
        let min_f = self
            .bell
            .iter()
            .map(|b| b.fidelity)
            .fold(f64::INFINITY, f64::min);
        r.push(Comparison::new(
            "T3",
            "min channel Bell fidelity",
            0.75,
            min_f,
            "",
            Expectation::AtLeast,
        ));
        r.push(Comparison::new(
            "F8",
            "raw four-photon interference visibility",
            0.89,
            self.fringe.visibility,
            "",
            Expectation::Within { rel_tol: 0.08 },
        ));
        r.push(Comparison::new(
            "T4",
            "four-photon tomography fidelity",
            0.64,
            self.tomography.fidelity,
            "",
            Expectation::Within { rel_tol: 0.12 },
        ));
        r
    }
}

/// Runs the full §V suite.
pub fn run_multiphoton_experiment(
    source: &QfcSource,
    config: &MultiPhotonConfig,
    seed: u64,
) -> MultiPhotonReport {
    MultiPhotonReport {
        bell: run_bell_tomography(source, config, seed),
        fringe: run_four_photon_fringe(source, config, seed.wrapping_add(1)),
        tomography: run_four_photon_tomography(source, config, seed.wrapping_add(2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source() -> QfcSource {
        QfcSource::paper_device_timebin()
    }

    #[test]
    fn bell_tomography_confirms_entanglement() {
        let results = run_bell_tomography(&source(), &MultiPhotonConfig::fast_demo(), 51);
        for b in &results {
            assert!(b.fidelity > 0.8, "m={}: F = {}", b.m, b.fidelity);
            assert!(b.concurrence > 0.5, "m={}: C = {}", b.m, b.concurrence);
        }
    }

    #[test]
    fn four_photon_visibility_near_paper() {
        let fringe = run_four_photon_fringe(&source(), &MultiPhotonConfig::fast_demo(), 52);
        assert!(
            (fringe.visibility - 0.89).abs() < 0.08,
            "V4 = {}",
            fringe.visibility
        );
    }

    #[test]
    fn four_photon_fringe_has_pi_period() {
        let fringe = run_four_photon_fringe(&source(), &MultiPhotonConfig::fast_demo(), 53);
        // The scan covers one π period; max and min must both occur.
        let max = fringe.points.iter().map(|p| p.1).max().expect("points");
        let min = fringe.points.iter().map(|p| p.1).min().expect("points");
        assert!(max > 3 * min.max(1), "max {max} min {min}");
    }

    #[test]
    fn four_photon_tomography_fidelity_near_paper() {
        let tomo = run_four_photon_tomography(&source(), &MultiPhotonConfig::fast_demo(), 54);
        assert!(
            (tomo.fidelity - 0.64).abs() < 0.12,
            "F4 = {}",
            tomo.fidelity
        );
        assert!(tomo.total_counts > 0);
    }

    #[test]
    fn report_rows_pass() {
        let report = run_multiphoton_experiment(&source(), &MultiPhotonConfig::fast_demo(), 55);
        let rows = report.to_report();
        assert!(rows.all_pass(), "{}", rows.render());
    }

    #[test]
    fn pump_trade_is_monotone() {
        let rows = pump_trade_scan(
            &source(),
            &TimeBinConfig::paper(),
            &[1.0, 2.0, 3.0, 5.0],
        );
        assert_eq!(rows.len(), 4);
        assert!((rows[0].relative_four_fold_rate - 1.0).abs() < 1e-12);
        for w in rows.windows(2) {
            // Rate rises as the 4th power of the amplitude…
            assert!(w[1].relative_four_fold_rate > w[0].relative_four_fold_rate);
            // …while visibility and pair fidelity fall.
            assert!(w[1].state_visibility < w[0].state_visibility);
            assert!(w[1].pair_fidelity < w[0].pair_fidelity);
        }
        // μ ∝ factor².
        assert!((rows[1].mu / rows[0].mu - 4.0).abs() < 1e-9);
    }
}
