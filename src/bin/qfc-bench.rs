//! `qfc-bench` — serial-vs-parallel wall-time harness for the shot-based
//! Monte-Carlo workloads.
//!
//! ```text
//! qfc-bench [--threads N] [--smoke] [--out PATH]
//! ```
//!
//! Every workload runs twice through the same code path: once pinned to a
//! single worker (`with_threads(1)`) and once on the parallel thread
//! count — `--threads` when given, otherwise 4 clamped to the host's
//! `available_parallelism` (timing more workers than cores only measures
//! oversubscription noise). The serialized results must match byte for
//! byte — the deterministic sharding makes thread count an implementation
//! detail — and the harness aborts if they don't. Timings land in
//! `BENCH_parallel.json`; the observability trace of the whole run lands
//! next to it as `<out stem>.trace.json`.
//!
//! `--smoke` shrinks every workload to seconds-scale for CI; speedups are
//! not meaningful there (the parallel grain is too small), only the
//! determinism cross-check is.

use std::process::ExitCode;
use std::time::Instant;

use serde::Serialize;

use qfc::core::heralded::{run_heralded_experiment, HeraldedConfig};
use qfc::core::multiphoton::{run_four_photon_tomography, MultiPhotonConfig};
use qfc::core::source::QfcSource;
use qfc::core::timebin::{run_timebin_event_mc, TimeBinConfig};
use qfc::mathkit::rng::rng_from_seed;
use qfc::quantum::bell::{bell_phi_plus, werner_state};
use qfc::quantum::fidelity::fidelity_with_pure;
use qfc::timetag::coincidence::cross_correlation_histogram;
use qfc::timetag::hbt::poissonian_stream;
use qfc::tomography::bootstrap::bootstrap_functional;
use qfc::tomography::counts::simulate_counts_seeded;
use qfc::tomography::reconstruct::{mle_reconstruction, MleOptions};
use qfc::tomography::settings::all_settings;

#[derive(Debug, Serialize)]
struct WorkloadRow {
    name: String,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    identical: bool,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    /// Thread count asked for on the command line (or the default 4).
    requested_threads: usize,
    /// Thread count the parallel leg actually ran with. Equals
    /// `requested_threads` unless the default was clamped to the host.
    effective_threads: usize,
    /// Hardware parallelism of the machine the bench ran on. Speedups
    /// are bounded by `min(effective_threads, host_cpus)`; on a
    /// single-core host the interesting column is `identical`, and
    /// near-1.0 "speedups" show the sharding overhead is negligible.
    host_cpus: usize,
    /// `true` when the parallel leg ran more workers than the host has
    /// CPUs — wall-clock "speedups" in that regime are scheduling noise,
    /// only the determinism cross-check is meaningful.
    oversubscribed: bool,
    smoke: bool,
    workloads: Vec<WorkloadRow>,
}

fn time_ms<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64() * 1e3, out)
}

/// Runs `f` serially and on `threads` workers, checks the serialized
/// outputs are byte-identical, and reports both wall times.
fn bench_workload(name: &str, threads: usize, f: impl Fn() -> String + Sync) -> WorkloadRow {
    let (serial_ms, serial_out) = time_ms(|| qfc::runtime::with_threads(1, &f));
    let (parallel_ms, parallel_out) = time_ms(|| qfc::runtime::with_threads(threads, &f));
    let identical = serial_out == parallel_out;
    let row = WorkloadRow {
        name: name.to_owned(),
        serial_ms,
        parallel_ms,
        speedup: serial_ms / parallel_ms,
        identical,
    };
    eprintln!(
        "{:<24} serial {:>9.1} ms | {} threads {:>9.1} ms | speedup {:.2}x | identical: {}",
        row.name, row.serial_ms, threads, row.parallel_ms, row.speedup, row.identical
    );
    row
}

fn run(requested: usize, threads: usize, host_cpus: usize, smoke: bool) -> BenchReport {
    let mut workloads = Vec::new();

    // §II heralded-photon experiment: per-channel tag generation +
    // detection, F1 coincidence matrix, F2 linewidth histogram.
    {
        let source = QfcSource::paper_device();
        let mut cfg = HeraldedConfig::fast_demo();
        if smoke {
            cfg.duration_s = 1.0;
            cfg.linewidth_pairs = 500;
        } else {
            cfg.duration_s = 40.0;
            cfg.linewidth_pairs = 40_000;
        }
        workloads.push(bench_workload("heralded", threads, || {
            let report = run_heralded_experiment(&source, &cfg, 7);
            serde_json::to_string(&report).expect("report serializes")
        }));
    }

    // §IV event-based time-bin Monte Carlo: full slot-resolved Franson
    // propagation of every emitted pair, one split-seed stream per
    // phase point.
    {
        let source = QfcSource::paper_device_timebin();
        let mut cfg = TimeBinConfig::fast_demo();
        cfg.frames_per_point = if smoke { 200_000 } else { 40_000_000 };
        let steps = if smoke { 8 } else { 32 };
        let phases: Vec<f64> = (0..steps)
            .map(|k| k as f64 * std::f64::consts::TAU / steps as f64)
            .collect();
        workloads.push(bench_workload("timebin-event-mc", threads, || {
            let scan = run_timebin_event_mc(&source, &cfg, 1, &phases, 11);
            serde_json::to_string(&scan).expect("scan serializes")
        }));
    }

    // §V four-photon tomography: 81 four-qubit settings sampled in
    // parallel, then a serial MLE reconstruction.
    {
        let source = QfcSource::paper_device_timebin();
        let mut cfg = MultiPhotonConfig::fast_demo();
        cfg.four_shots_per_setting = if smoke { 40 } else { 20_000 };
        workloads.push(bench_workload("four-photon-tomography", threads, || {
            let tomo = run_four_photon_tomography(&source, &cfg, 13);
            serde_json::to_string(&tomo).expect("tomography serializes")
        }));
    }

    // Parametric bootstrap: every replica resamples and re-runs the MLE
    // reconstructor on its own split-seed stream.
    {
        let truth = werner_state(0.83, 0.0);
        let settings = all_settings(2);
        let shots = if smoke { 200 } else { 2_000 };
        let replicas = if smoke { 8 } else { 48 };
        let data = simulate_counts_seeded(&truth, &settings, shots, 17);
        let target = bell_phi_plus();
        workloads.push(bench_workload("bootstrap-mle", threads, || {
            let est = bootstrap_functional(
                17,
                &data,
                replicas,
                |d| mle_reconstruction(d, &MleOptions::default()).rho,
                |rho| fidelity_with_pure(rho, &target),
            );
            serde_json::to_string(&est).expect("estimate serializes")
        }));
    }

    // §II time-resolved cross-correlation: two-pointer sweep over
    // sharded start tags.
    {
        let mut rng = rng_from_seed(19);
        let duration_s = if smoke { 2.0 } else { 40.0 };
        let a = poissonian_stream(&mut rng, 200_000.0, duration_s);
        let b = poissonian_stream(&mut rng, 200_000.0, duration_s);
        workloads.push(bench_workload("coincidence-histogram", threads, || {
            let hist = cross_correlation_histogram(&a, &b, 100_000, 50);
            serde_json::to_string(&hist).expect("histogram serializes")
        }));
    }

    if host_cpus < threads {
        eprintln!(
            "note: host has {host_cpus} CPU(s) < {threads} requested threads; \
             wall-clock speedup is capped at {host_cpus}x"
        );
    }
    BenchReport {
        requested_threads: requested,
        effective_threads: threads,
        host_cpus,
        oversubscribed: threads > host_cpus,
        smoke,
        workloads,
    }
}

fn main() -> ExitCode {
    let mut requested: Option<usize> = None;
    let mut smoke = false;
    let mut out = String::from("BENCH_parallel.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => requested = Some(n),
                _ => {
                    eprintln!("--threads needs a positive integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => {
                    eprintln!("--out needs a path argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: qfc-bench [--threads N] [--smoke] [--out PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // An explicit --threads is honored (and flagged as oversubscribed when
    // it exceeds the host); only the default is clamped to the hardware.
    let (requested, threads) = match requested {
        Some(n) => (n, n),
        None => (4, 4usize.min(host_cpus)),
    };

    let collector = qfc::obs::Collector::new();
    let report = collector.install(|| run(requested, threads, host_cpus, smoke));
    if report.workloads.iter().any(|w| !w.identical) {
        eprintln!("FAIL: serial and parallel outputs differ");
        return ExitCode::FAILURE;
    }
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    let trace_out = match out.strip_suffix(".json") {
        Some(stem) => format!("{stem}.trace.json"),
        None => format!("{out}.trace.json"),
    };
    if let Err(e) = std::fs::write(&trace_out, collector.snapshot().to_json() + "\n") {
        eprintln!("cannot write {trace_out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {trace_out}");
    ExitCode::SUCCESS
}
