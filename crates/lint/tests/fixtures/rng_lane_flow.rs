//@ crate: qfc-core
// Interprocedural RNG-lane discipline: a seed reaching `rng_from_seed`
// on a parallel path must carry split_seed lane evidence — even when
// laundered through a helper fn.

fn helper(x: u64, seed: u64) -> u64 {
    let mut _rng = rng_from_seed(seed);
    x
}

pub fn laundered(xs: &[u64], seed: u64) {
    par_map(xs, |x| helper(*x, seed)); //~ ERROR rng-lane-flow
}

pub fn lane_split_is_fine(xs: &[u64], seed: u64) {
    par_map(xs, |x| helper(*x, split_seed(seed, *x)));
}

pub fn direct_ctor_in_closure(xs: &[u64], seed: u64) {
    par_map(xs, |x| {
        let mut _rng = rng_from_seed(seed); //~ ERROR rng-lane-flow
        *x
    });
}

pub fn shard_lane_is_fine(n: u64, seed: u64) -> Vec<u64> {
    par_shots(n, seed, |shard| {
        let mut _rng = rng_from_seed(shard.seed);
        Vec::new()
    }, |acc: Vec<Vec<u64>>| acc.into_iter().flatten().collect())
}

pub fn serial_raw_seed_is_out_of_scope(seed: u64) {
    let mut _rng = rng_from_seed(seed);
}
