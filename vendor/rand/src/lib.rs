//! Offline vendored stand-in for the `rand` crate.
//!
//! The workspace builds in a hermetic container without registry access,
//! so this crate re-implements exactly the surface the workspace uses:
//! [`Rng::gen`] for `f64`/`f32`/`bool`/`u32`/`u64`/`usize`,
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! The generator is xoshiro256\*\* seeded through SplitMix64 — a
//! different stream than upstream `rand`'s ChaCha12-based `StdRng`, but
//! every consumer in this workspace asserts statistical properties (or
//! same-seed reproducibility), never specific draw values, so the swap is
//! behavior-preserving for the test suite while staying fully
//! deterministic.

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an [`RngCore`].
///
/// Stands in for `rand`'s `Standard: Distribution<T>` bound behind
/// [`Rng::gen`].
pub trait Rand: Sized {
    /// Draws one uniformly distributed value.
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Rand for u64 {
    #[inline]
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Rand for u32 {
    #[inline]
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Rand for usize {
    #[inline]
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Rand for bool {
    #[inline]
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 63) == 1
    }
}

impl Rand for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Rand for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`] (including unsized `&mut R` receivers, matching how the
/// workspace threads `R: Rng + ?Sized` everywhere).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: Rand>(&mut self) -> T {
        T::rand(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: advances `state` and returns the next mixed output.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256\*\* (Blackman & Vigna),
    /// seeded via SplitMix64. Passes the workspace's moment tests and is
    /// fully reproducible from its 64-bit seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro256** requires a nonzero state; SplitMix64 cannot
            // emit four consecutive zeros, but guard anyway.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2, "{same} collisions in 32 draws");
    }

    #[test]
    fn f64_in_unit_interval_with_uniform_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_balanced() {
        let mut rng = StdRng::seed_from_u64(9);
        let heads = (0..100_000).filter(|_| rng.gen::<bool>()).count();
        assert!((heads as f64 / 100_000.0 - 0.5).abs() < 0.01, "{heads}");
    }

    #[test]
    fn works_through_unsized_receiver() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let dynrng: &mut dyn super::RngCore = &mut rng;
        let x = draw(dynrng);
        assert!((0.0..1.0).contains(&x));
    }
}
