//! # qfc-lint
//!
//! A deterministic, zero-dependency, domain-invariant static-analysis
//! pass over this workspace's own Rust sources.
//!
//! The paper's headline claim is metrological stability — CAR,
//! visibility, and fidelity figures reproducible over weeks. The
//! software analogue enforced here is that every published number is a
//! pure, byte-identical function of explicit seeds at any thread count.
//! PR 3's bug crop (`as i64` frequency comparison, unguarded mean
//! division) showed that the defects threatening that claim are a
//! *class*; `qfc-lint` machine-checks the class instead of trusting
//! review.
//!
//! Since v2 the pass is *semantic*: [`resolve`] recovers fn items,
//! call sites, and parallel-closure spans from the token stream,
//! [`callgraph`] links them into a deterministic workspace call graph
//! (serialized as `target/CALLGRAPH.json`), and [`semantic`] proves
//! flow-aware properties over it:
//!
//! * **lossy-cast** — no `as` numeric casts in library crates,
//! * **determinism** — no wall clock, ambient entropy, or unordered
//!   iteration in use position in result-affecting code,
//! * **rng-lane** — drivers derive RNGs only through `split_seed` lanes,
//! * **rng-lane-flow** — interprocedural: seeds reaching `rng_from_seed`
//!   on a parallel path must carry `split_seed` lane evidence, even
//!   when laundered through helper fns,
//! * **panic-reachability** — every panic site reachable from a public
//!   fn of a library crate needs a justified allow on the path,
//! * **par-merge-order** — parallel closures must not mutate captured
//!   accumulators or touch shared-state primitives; merges fold in
//!   shard-index order,
//! * **error-taxonomy** — public fallible fns return `QfcError`,
//!
//! plus the workspace checks **forbid-unsafe** and **ci-roster**, the
//! hot-region check **hot-loop-alloc**, and directive hygiene
//! (**bad-directive**, **unused-allow**).
//!
//! Library crates under `crates/` are linted under the strict profile;
//! the workspace root crate (`src/`, `src/bin/`) and `examples/` ride
//! along under the relaxed profile, where panic and cast rules are
//! advisory but determinism and RNG-lane discipline stay enforced.
//!
//! A violation is silenced only by an in-source scoped directive with a
//! mandatory justification:
//!
//! ```text
//! // qfc-lint: allow(lossy-cast) — exact: bin counts stay far below 2^53
//! ```
//!
//! Reports are emitted in canonical deterministic order as both a human
//! listing and machine-readable JSON; two runs over identical sources
//! are byte-identical. See `DESIGN.md` §11 for the taxonomy and the
//! policy for adding rules.
//!
//! ## Example
//!
//! ```
//! use qfc_lint::engine::lint_source;
//! let r = lint_source("qfc-core", "demo.rs", "fn f(n: usize) -> f64 { n as f64 }\n");
//! assert_eq!(r.findings.len(), 1);
//! assert_eq!(r.findings[0].rule, "lossy-cast");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod callgraph;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod resolve;
pub mod rules;
pub mod semantic;
pub mod workspace;

pub use callgraph::GraphSummary;
pub use engine::{lint_source, Finding};
pub use workspace::{find_workspace_root, run, RunReport};

/// Errors from the filesystem-facing layer (`run`, `find_workspace_root`).
///
/// `qfc-lint` sits below `qfc-faults` in the dependency graph (it is
/// zero-dependency by design), so it carries its own error type rather
/// than `QfcError`; the `error-taxonomy` scope list records this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintError {
    /// An I/O operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The I/O error kind (stable, deterministic rendering).
        kind: std::io::ErrorKind,
    },
    /// No enclosing Cargo workspace was found.
    NotAWorkspace(String),
}

impl LintError {
    /// Builds an [`LintError::Io`] from a path and error.
    pub fn io(path: &std::path::Path, err: &std::io::Error) -> Self {
        LintError::Io {
            path: path.display().to_string(),
            kind: err.kind(),
        }
    }
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io { path, kind } => write!(f, "I/O error ({kind:?}) at {path}"),
            LintError::NotAWorkspace(start) => {
                write!(f, "no Cargo workspace found above {start}")
            }
        }
    }
}

impl std::error::Error for LintError {}
