//! Unbalanced Michelson interferometers: the §IV–V workhorses.
//!
//! One stabilized unbalanced Michelson converts each pump pulse into a
//! phase-coherent **double pulse** (writing the time-bin basis); a second,
//! path-matched interferometer per photon acts as the **analyzer**,
//! mapping the time-bin qubit onto three arrival slots whose middle slot
//! interferes the early-via-long and late-via-short paths.

use serde::{Deserialize, Serialize};

use qfc_mathkit::complex::Complex64;

use qfc_quantum::state::PureState;

/// An unbalanced Michelson interferometer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnbalancedMichelson {
    /// Arm-length imbalance expressed as a time delay, s.
    pub delay_s: f64,
    /// Relative phase of the long arm, rad.
    pub phase_rad: f64,
    /// Excess insertion loss (power fraction lost beyond the intrinsic
    /// 50 % splitting loss), 0‥1.
    pub excess_loss: f64,
}

impl UnbalancedMichelson {
    /// Creates an interferometer with the given delay and phase and no
    /// excess loss.
    ///
    /// # Panics
    ///
    /// Panics if `delay_s <= 0`.
    pub fn new(delay_s: f64, phase_rad: f64) -> Self {
        assert!(delay_s > 0.0, "delay must be positive");
        Self {
            delay_s,
            phase_rad,
            excess_loss: 0.0,
        }
    }

    /// The paper's interferometer: imbalance matched to the double-pulse
    /// separation of a few nanoseconds.
    pub fn paper_instrument(phase_rad: f64) -> Self {
        Self::new(4.0e-9, phase_rad)
    }

    /// Sets the excess insertion loss.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ loss < 1`.
    pub fn with_excess_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        self.excess_loss = loss;
        self
    }

    /// `true` when two interferometers are path-matched within the field
    /// coherence time `coherence_s` — the condition for the analyzer to
    /// erase the which-bin information.
    pub fn matches(&self, other: &Self, coherence_s: f64) -> bool {
        (self.delay_s - other.delay_s).abs() < coherence_s
    }

    /// Double-pulse writer: amplitudes of the early and late output
    /// pulses produced from one input pulse (pump preparation).
    ///
    /// Each amplitude carries a factor ½ (two passes of the 50/50
    /// splitter); the long arm adds `e^{iφ}`. The remaining probability
    /// exits the unused port.
    pub fn double_pulse_amplitudes(&self) -> (Complex64, Complex64) {
        let t = (1.0 - self.excess_loss).sqrt();
        (
            Complex64::real(0.5 * t),
            Complex64::cis(self.phase_rad).scale(0.5 * t),
        )
    }

    /// Efficiency of double-pulse preparation: total output probability
    /// of the two pulses.
    pub fn double_pulse_efficiency(&self) -> f64 {
        let (a, b) = self.double_pulse_amplitudes();
        a.norm_sqr() + b.norm_sqr()
    }

    /// Analyzer action on a single time-bin qubit `α|e⟩ + β|l⟩`:
    /// amplitudes of the three arrival slots
    /// `(first, middle, last) = (α, α·e^{iφ} + β, β·e^{iφ})/2`.
    ///
    /// # Panics
    ///
    /// Panics unless `qubit` is a single-qubit state.
    pub fn analyze(&self, qubit: &PureState) -> [Complex64; 3] {
        assert_eq!(qubit.qubits(), 1, "analyzer takes a single time-bin qubit");
        let t = (1.0 - self.excess_loss).sqrt();
        let alpha = qubit.amplitude(0);
        let beta = qubit.amplitude(1);
        let phase = Complex64::cis(self.phase_rad);
        [
            alpha.scale(0.5 * t),
            (alpha * phase + beta).scale(0.5 * t),
            (beta * phase).scale(0.5 * t),
        ]
    }

    /// Probabilities of the three arrival slots for a time-bin qubit.
    pub fn slot_probabilities(&self, qubit: &PureState) -> [f64; 3] {
        let a = self.analyze(qubit);
        [a[0].norm_sqr(), a[1].norm_sqr(), a[2].norm_sqr()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfc_mathkit::cvector::CVector;

    #[test]
    fn double_pulse_equal_amplitudes() {
        let m = UnbalancedMichelson::new(4e-9, 0.0);
        let (a, b) = m.double_pulse_amplitudes();
        assert!((a.abs() - 0.5).abs() < 1e-12);
        assert!((b.abs() - 0.5).abs() < 1e-12);
        assert!((m.double_pulse_efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phase_appears_on_late_pulse() {
        let m = UnbalancedMichelson::new(4e-9, 1.3);
        let (a, b) = m.double_pulse_amplitudes();
        assert!((b.arg() - 1.3).abs() < 1e-12);
        assert!(a.arg().abs() < 1e-12);
    }

    #[test]
    fn excess_loss_scales_output() {
        let m = UnbalancedMichelson::new(4e-9, 0.0).with_excess_loss(0.5);
        assert!((m.double_pulse_efficiency() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn analyzer_slot_probabilities_early_input() {
        let m = UnbalancedMichelson::new(4e-9, 0.7);
        let p = m.slot_probabilities(&PureState::ket0());
        // Early photon: ¼ first, ¼ middle (via long), 0 last.
        assert!((p[0] - 0.25).abs() < 1e-12);
        assert!((p[1] - 0.25).abs() < 1e-12);
        assert!(p[2] < 1e-14);
    }

    #[test]
    fn middle_slot_interferes_superposition() {
        // (|e⟩ + |l⟩)/√2 at analyzer phase 0: middle amplitude
        // (1 + 1)/(2√2) → probability ½; at phase π: 0.
        let plus = PureState::plus();
        let constructive = UnbalancedMichelson::new(4e-9, 0.0).slot_probabilities(&plus);
        assert!((constructive[1] - 0.5).abs() < 1e-12);
        let destructive =
            UnbalancedMichelson::new(4e-9, std::f64::consts::PI).slot_probabilities(&plus);
        assert!(destructive[1] < 1e-12);
    }

    #[test]
    fn analyzer_conserves_probability_up_to_unused_port() {
        let m = UnbalancedMichelson::new(4e-9, 0.4);
        for amps in [
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.6, 0.8],
        ] {
            let q = PureState::from_amplitudes(CVector::from_real(&amps)).expect("valid");
            let p = m.slot_probabilities(&q);
            let total: f64 = p.iter().sum();
            // ≤ 1; mean over phases is ½.
            assert!(total <= 1.0 + 1e-12, "total {total}");
        }
    }

    #[test]
    fn matching_condition() {
        let a = UnbalancedMichelson::new(4.0e-9, 0.0);
        let b = UnbalancedMichelson::new(4.0e-9 + 0.2e-9, 0.0);
        // Paper's photons: τ_c ≈ 1.45 ns → matched.
        assert!(a.matches(&b, 1.45e-9));
        // Much shorter coherence would expose the path difference.
        assert!(!a.matches(&b, 0.05e-9));
    }

    #[test]
    #[should_panic(expected = "delay must be positive")]
    fn rejects_zero_delay() {
        let _ = UnbalancedMichelson::new(0.0, 0.0);
    }
}
