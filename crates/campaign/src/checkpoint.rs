//! Integrity-hashed shard checkpoints.
//!
//! One file per completed shard, `shard-NNNN.json`, holding the
//! campaign fingerprint, the shard index, the payload, and an FNV-1a 64
//! content hash of the payload. Writes go through a temp file and an
//! atomic rename so a crash mid-write leaves either the previous state
//! or a `.tmp` orphan — never a half-written checkpoint under the final
//! name. Loads re-verify everything: unparseable JSON (a torn write
//! that somehow landed), a fingerprint mismatch (stale checkpoint from
//! another campaign), a shard-index mismatch (duplicate/misfiled file),
//! or a content-hash mismatch (corruption) all reject the checkpoint,
//! and the engine simply re-runs that shard.

use std::fs;
use std::path::{Path, PathBuf};

use qfc_faults::{QfcError, QfcResult};
use qfc_obs::RunManifest;
use serde::{Deserialize, Serialize};

/// On-disk checkpoint record for one shard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Campaign fingerprint this checkpoint belongs to.
    pub campaign: String,
    /// Shard index within the campaign manifest.
    pub shard: u32,
    /// FNV-1a 64 hash (16 hex digits) of `payload`.
    pub payload_hash: String,
    /// The shard's serialized result.
    pub payload: String,
}

/// Canonical checkpoint path for a shard.
pub fn shard_path(dir: &Path, index: u32) -> PathBuf {
    dir.join(format!("shard-{index:04}.json"))
}

/// Writes a shard checkpoint: serialize, write to `<name>.tmp`, then
/// rename over the final name so readers never observe a torn write.
///
/// # Errors
///
/// [`QfcError::Persistence`] on serialization or filesystem failure.
pub fn write_checkpoint(dir: &Path, campaign_id: &str, index: u32, payload: &str) -> QfcResult<()> {
    let record = Checkpoint {
        campaign: campaign_id.to_owned(),
        shard: index,
        payload_hash: RunManifest::digest_hex(payload.as_bytes()),
        payload: payload.to_owned(),
    };
    let bytes = serde_json::to_string(&record)
        .map_err(|e| QfcError::persistence(format!("checkpoint serialization: {e}")))?;
    let path = shard_path(dir, index);
    write_atomic(&path, bytes.as_bytes())
}

/// Writes `bytes` to `path` via a sibling `.tmp` file and a rename.
///
/// # Errors
///
/// [`QfcError::Persistence`] on filesystem failure.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> QfcResult<()> {
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, bytes)
        .map_err(|e| QfcError::persistence(format!("write {}: {e}", tmp.display())))?;
    fs::rename(&tmp, path)
        .map_err(|e| QfcError::persistence(format!("rename into {}: {e}", path.display())))
}

/// Result of probing a shard's checkpoint at resume time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadOutcome {
    /// No checkpoint on disk — the shard is pending.
    Missing,
    /// A valid checkpoint: the shard's payload, integrity-verified.
    Valid(String),
    /// A checkpoint exists but failed validation (reason attached); the
    /// engine deletes it and re-runs the shard.
    Rejected(String),
}

/// Loads and validates a shard checkpoint against the campaign
/// fingerprint and the expected shard index.
pub fn load_checkpoint(dir: &Path, campaign_id: &str, index: u32) -> LoadOutcome {
    let path = shard_path(dir, index);
    let bytes = match fs::read_to_string(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LoadOutcome::Missing,
        Err(e) => return LoadOutcome::Rejected(format!("unreadable: {e}")),
    };
    let record: Checkpoint = match serde_json::from_str(&bytes) {
        Ok(r) => r,
        Err(e) => return LoadOutcome::Rejected(format!("torn or malformed JSON: {e}")),
    };
    if record.campaign != campaign_id {
        return LoadOutcome::Rejected(format!(
            "stale fingerprint {} (campaign is {campaign_id})",
            record.campaign
        ));
    }
    if record.shard != index {
        return LoadOutcome::Rejected(format!(
            "shard index mismatch: file holds {}, expected {index}",
            record.shard
        ));
    }
    let hash = RunManifest::digest_hex(record.payload.as_bytes());
    if hash != record.payload_hash {
        return LoadOutcome::Rejected(format!(
            "payload hash mismatch: stored {}, computed {hash}",
            record.payload_hash
        ));
    }
    LoadOutcome::Valid(record.payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("ckpt-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn round_trip_is_valid() {
        let dir = tmpdir("roundtrip");
        write_checkpoint(&dir, "aaaaaaaaaaaaaaaa", 3, "{\"x\":1}").expect("write");
        assert_eq!(
            load_checkpoint(&dir, "aaaaaaaaaaaaaaaa", 3),
            LoadOutcome::Valid("{\"x\":1}".to_owned())
        );
        assert_eq!(load_checkpoint(&dir, "aaaaaaaaaaaaaaaa", 4), LoadOutcome::Missing);
    }

    #[test]
    fn torn_write_is_rejected() {
        let dir = tmpdir("torn");
        write_checkpoint(&dir, "aaaaaaaaaaaaaaaa", 0, "{\"x\":1}").expect("write");
        let path = shard_path(&dir, 0);
        let full = fs::read_to_string(&path).expect("read");
        fs::write(&path, &full[..full.len() / 2]).expect("truncate");
        assert!(matches!(
            load_checkpoint(&dir, "aaaaaaaaaaaaaaaa", 0),
            LoadOutcome::Rejected(_)
        ));
    }

    #[test]
    fn stale_fingerprint_and_misfiled_shard_are_rejected() {
        let dir = tmpdir("stale");
        write_checkpoint(&dir, "aaaaaaaaaaaaaaaa", 0, "{}").expect("write");
        assert!(matches!(
            load_checkpoint(&dir, "bbbbbbbbbbbbbbbb", 0),
            LoadOutcome::Rejected(_)
        ));
        // A duplicate checkpoint copied over another shard's slot.
        fs::copy(shard_path(&dir, 0), shard_path(&dir, 5)).expect("copy");
        assert!(matches!(
            load_checkpoint(&dir, "aaaaaaaaaaaaaaaa", 5),
            LoadOutcome::Rejected(_)
        ));
    }

    #[test]
    fn payload_corruption_is_rejected() {
        let dir = tmpdir("corrupt");
        write_checkpoint(&dir, "aaaaaaaaaaaaaaaa", 1, "{\"v\":42}").expect("write");
        let path = shard_path(&dir, 1);
        let tampered = fs::read_to_string(&path).expect("read").replace("42", "43");
        fs::write(&path, tampered).expect("tamper");
        assert!(matches!(
            load_checkpoint(&dir, "aaaaaaaaaaaaaaaa", 1),
            LoadOutcome::Rejected(r) if r.contains("hash mismatch")
        ));
    }
}
