//! Run-health reporting: what went wrong and what the supervisor did
//! about it.
//!
//! A [`HealthReport`] rides along with every experiment report. A clean
//! run (empty fault schedule, no recovery actions) produces
//! [`HealthReport::pristine`], which serializes compactly and lets tests
//! assert byte-identity with pre-fault-layer outputs.

use serde::{Deserialize, Serialize};

/// One fault the schedule injected into the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Human-readable description (from [`crate::FaultKind::label`]).
    pub description: String,
    /// Window start, s into the run.
    pub start_s: f64,
    /// Window length, s.
    pub duration_s: f64,
}

/// One recovery action the supervisor took.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// The pump lock was reacquired after `attempts` tries, costing
    /// `outage description` of integration (recorded separately in
    /// [`HealthReport::outage_s`]).
    PumpRelock {
        /// Re-lock attempts needed.
        attempts: u32,
    },
    /// A multiplexed channel was dropped from the analysis.
    ChannelQuarantined {
        /// 1-based channel index.
        channel: u32,
        /// Why it was dropped.
        reason: String,
    },
    /// An estimator was swapped for a simpler fallback.
    Fallback {
        /// What was attempted.
        from: String,
        /// What was used instead.
        to: String,
    },
    /// A whole analysis stage was retried.
    Retry {
        /// Which stage.
        stage: String,
    },
}

/// Health section of an experiment report.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HealthReport {
    /// Faults the schedule injected into this run.
    pub faults_injected: Vec<FaultRecord>,
    /// Recovery actions the supervisor took.
    pub recovery_actions: Vec<RecoveryAction>,
    /// Channels excluded from the analysis (1-based), sorted.
    pub quarantined_channels: Vec<u32>,
    /// Total integration time lost to pump outages, s.
    pub outage_s: f64,
}

impl HealthReport {
    /// The health report of a clean run: no faults, no recoveries.
    pub fn pristine() -> Self {
        Self::default()
    }

    /// `true` when nothing went wrong and nothing was recovered.
    pub fn is_pristine(&self) -> bool {
        self.faults_injected.is_empty()
            && self.recovery_actions.is_empty()
            && self.quarantined_channels.is_empty()
            && self.outage_s == 0.0
    }

    /// `true` when the run completed in a degraded configuration
    /// (quarantined channels or estimator fallbacks).
    pub fn is_degraded(&self) -> bool {
        !self.quarantined_channels.is_empty()
            || self
                .recovery_actions
                .iter()
                .any(|a| matches!(a, RecoveryAction::Fallback { .. }))
    }

    /// Records an injected fault.
    ///
    /// Every `record_*` method also bumps the matching `qfc_obs` counter
    /// (`faults_injected`, `recovery_*`) when a collector is installed,
    /// so the observability registry mirrors the health section without
    /// separate wiring at every call site. [`absorb`](Self::absorb)
    /// deliberately does *not* re-count — sub-experiment records were
    /// counted when first recorded.
    pub fn record_fault(&mut self, description: String, start_s: f64, duration_s: f64) {
        qfc_obs::counter_add("faults_injected", 1);
        self.faults_injected.push(FaultRecord {
            description,
            start_s,
            duration_s,
        });
    }

    /// Records a successful pump re-lock.
    pub fn record_relock(&mut self, attempts: u32, outage_s: f64) {
        qfc_obs::counter_add("recovery_relocks", 1);
        self.recovery_actions
            .push(RecoveryAction::PumpRelock { attempts });
        self.outage_s += outage_s;
    }

    /// Records a channel quarantine (keeps the channel list sorted and
    /// deduplicated).
    pub fn record_quarantine(&mut self, channel: u32, reason: impl Into<String>) {
        qfc_obs::counter_add("recovery_quarantines", 1);
        self.recovery_actions.push(RecoveryAction::ChannelQuarantined {
            channel,
            reason: reason.into(),
        });
        if let Err(pos) = self.quarantined_channels.binary_search(&channel) {
            self.quarantined_channels.insert(pos, channel);
        }
    }

    /// Records an estimator fallback.
    pub fn record_fallback(&mut self, from: impl Into<String>, to: impl Into<String>) {
        qfc_obs::counter_add("recovery_fallbacks", 1);
        self.recovery_actions.push(RecoveryAction::Fallback {
            from: from.into(),
            to: to.into(),
        });
    }

    /// Records a retried stage.
    pub fn record_retry(&mut self, stage: impl Into<String>) {
        qfc_obs::counter_add("recovery_retries", 1);
        self.recovery_actions.push(RecoveryAction::Retry {
            stage: stage.into(),
        });
    }

    /// Merges another health report into this one (for drivers composed
    /// of sub-experiments).
    pub fn absorb(&mut self, other: HealthReport) {
        self.faults_injected.extend(other.faults_injected);
        self.recovery_actions.extend(other.recovery_actions);
        for c in other.quarantined_channels {
            if let Err(pos) = self.quarantined_channels.binary_search(&c) {
                self.quarantined_channels.insert(pos, c);
            }
        }
        self.outage_s += other.outage_s;
    }

    /// Plain-text rendering for report output.
    pub fn render(&self) -> String {
        if self.is_pristine() {
            return "health: pristine (no faults injected, no recovery actions)\n".to_owned();
        }
        let mut out = String::from("health:\n");
        for f in &self.faults_injected {
            out.push_str(&format!(
                "  fault    {} @ {:.2} s for {:.2} s\n",
                f.description, f.start_s, f.duration_s
            ));
        }
        for a in &self.recovery_actions {
            match a {
                RecoveryAction::PumpRelock { attempts } => {
                    out.push_str(&format!("  recover  pump re-locked after {attempts} attempt(s)\n"));
                }
                RecoveryAction::ChannelQuarantined { channel, reason } => {
                    out.push_str(&format!("  recover  channel {channel} quarantined: {reason}\n"));
                }
                RecoveryAction::Fallback { from, to } => {
                    out.push_str(&format!("  recover  fallback {from} -> {to}\n"));
                }
                RecoveryAction::Retry { stage } => {
                    out.push_str(&format!("  recover  retried {stage}\n"));
                }
            }
        }
        if self.outage_s > 0.0 {
            out.push_str(&format!("  outage   {:.3} s of integration lost\n", self.outage_s));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_roundtrip() {
        let h = HealthReport::pristine();
        assert!(h.is_pristine());
        assert!(!h.is_degraded());
        let json = serde_json::to_string(&h).unwrap();
        let back: HealthReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn quarantine_sorted_dedup() {
        let mut h = HealthReport::pristine();
        h.record_quarantine(3, "dead idler detector");
        h.record_quarantine(1, "dead signal detector");
        h.record_quarantine(3, "again");
        assert_eq!(h.quarantined_channels, vec![1, 3]);
        assert!(h.is_degraded());
        assert_eq!(h.recovery_actions.len(), 3);
    }

    #[test]
    fn absorb_merges() {
        let mut a = HealthReport::pristine();
        a.record_fault("pump lock loss".into(), 1.0, 0.5);
        a.record_relock(2, 0.8);
        let mut b = HealthReport::pristine();
        b.record_fallback("MLE", "linear inversion");
        b.record_quarantine(4, "saturated");
        a.absorb(b);
        assert_eq!(a.faults_injected.len(), 1);
        assert_eq!(a.recovery_actions.len(), 3);
        assert_eq!(a.quarantined_channels, vec![4]);
        assert!((a.outage_s - 0.8).abs() < 1e-12);
        assert!(a.is_degraded());
    }

    #[test]
    fn render_mentions_everything() {
        let mut h = HealthReport::pristine();
        h.record_fault("dark-count burst ×5 (all channels)".into(), 2.0, 1.0);
        h.record_relock(3, 1.2);
        h.record_fallback("MLE", "linear inversion");
        h.record_retry("linewidth fit");
        let r = h.render();
        assert!(r.contains("dark-count burst"));
        assert!(r.contains("re-locked after 3"));
        assert!(r.contains("MLE -> linear inversion"));
        assert!(r.contains("retried linewidth fit"));
        assert!(r.contains("1.200 s"));
    }
}
