//@ crate: qfc-core
pub fn library_code() -> u8 {
    0
}

#[cfg(test)]
mod tests {
    fn helper(n: usize) -> f64 {
        n as f64
    }

    #[test]
    fn casts_and_panics_are_free_in_tests() {
        if helper(1) < 0.0 {
            panic!("tests may panic");
        }
        let mut m = std::collections::HashMap::new();
        m.insert(1u8, 2u8);
    }
}
