//! High-dimensional extension: the paper's "frequency multiplexing to
//! enable high dimensional … operation" outlook, made concrete. The many
//! symmetric channel pairs of the comb encode a frequency-bin qudit pair;
//! this example computes its entanglement and the CGLMP violation budget.
//!
//! ```sh
//! cargo run --release --example qudit_extension
//! ```

use qfc::core::source::QfcSource;
use qfc::quantum::qudit::{
    cglmp_critical_visibility, cglmp_value, BipartiteQudit, CGLMP_CLASSICAL_BOUND,
};

fn main() {
    let source = QfcSource::paper_device_timebin();

    println!("== Frequency-bin qudits from the comb ==");
    println!("(channel-pair SFWM amplitudes weight the Schmidt modes)\n");
    println!("  d   entropy (bits)   ideal log2(d)   Schmidt rank");
    for d in [2usize, 3, 4, 5, 8] {
        // Per-channel pair emission weights from the source model.
        let weights: Vec<f64> = (1..=d as u32)
            .map(|m| source.pairs_per_frame(m))
            .collect();
        let state = BipartiteQudit::from_channel_weights(&weights);
        println!(
            " {:>2}     {:>6.3}          {:>6.3}          {:>3}",
            d,
            state.entanglement_entropy_bits(),
            (d as f64).log2(),
            state.schmidt_rank(1e-9)
        );
    }

    println!("\n== CGLMP violation budget ==");
    println!("(classical bound {CGLMP_CLASSICAL_BOUND}; critical visibility falls with d)\n");
    println!("  d    I_d (V=1)   critical V   I_d at V=0.83");
    for d in 2..=8 {
        println!(
            " {:>2}    {:>7.4}     {:>6.4}      {:>7.4} {}",
            d,
            cglmp_value(d, 1.0),
            cglmp_critical_visibility(d),
            cglmp_value(d, 0.83),
            if cglmp_value(d, 0.83) > CGLMP_CLASSICAL_BOUND {
                "VIOLATES"
            } else {
                ""
            }
        );
    }
    println!(
        "\nAt the paper's 83 % visibility, every dimension d ≥ 2 violates its\n\
         CGLMP bound — and the margin grows with d: high-dimensional\n\
         frequency-bin operation is within the measured noise budget."
    );
}
