//! Deterministic observability for the QFC workspace: hierarchical trace
//! spans, a typed metrics registry, and per-run manifests.
//!
//! The crate has **zero dependencies** (not even the workspace's vendored
//! serde) and is **inert by default**: every instrumentation call —
//! [`span`], [`counter_add`], [`gauge_set`], [`set_manifest`] — is a no-op
//! unless a [`Collector`] is installed on the current thread, so
//! uninstrumented runs produce byte-identical output to a build without
//! this crate.
//!
//! ## Determinism contract
//!
//! The observability layer must never make an experiment's *telemetry*
//! depend on thread scheduling, because the workspace guarantees bitwise
//! reproducibility at any thread count. The contract:
//!
//! * **Spans** are opened only on the driver thread. Inside a pool task
//!   (installed via [`Collector::run_task`] by `qfc-runtime`, for worker
//!   threads *and* the serial short-circuit path alike) span creation is
//!   suppressed, so the span tree is aggregated by name and nesting —
//!   never by scheduling order — and is identical at 1, 4, or 8 threads.
//! * **Counters** are commutative sums and may be bumped from anywhere,
//!   including pool tasks; totals are scheduling-invariant.
//! * **Gauges** record point-in-time environment facts (e.g.
//!   `pool_threads`) and are driver-thread-only: [`gauge_set`] from
//!   inside a task is suppressed so racing workers can never fight over
//!   a last-write.
//! * **Wall-times** on spans are inherently nondeterministic, so the
//!   exporter offers [`TraceSnapshot::to_deterministic_json`], which
//!   omits timings, gauges, and the manifest — the cross-thread-count
//!   invariant view used by the test suite — next to the full
//!   [`TraceSnapshot::to_json`].
//!
//! ## Usage
//!
//! ```
//! use qfc_obs::Collector;
//!
//! let collector = Collector::new();
//! collector.install(|| {
//!     let _run = qfc_obs::span("demo");
//!     qfc_obs::counter_add("shots_simulated", 128);
//! });
//! let snapshot = collector.snapshot();
//! assert!(snapshot.to_json().contains("shots_simulated"));
//! ```

#![forbid(unsafe_code)]

mod export;
mod manifest;

pub use export::{SpanData, TraceSnapshot};
pub use manifest::{fnv1a64, CampaignSummary, RunManifest};

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Counters pre-registered (in this order) by [`Collector::new`], so the
/// exported registry order never depends on instrumentation-touch order.
pub const REGISTERED_COUNTERS: [&str; 15] = [
    "shots_simulated",
    "coincidences_counted",
    "mle_iterations",
    "bootstrap_replicas",
    "faults_injected",
    "shards_executed",
    "recovery_relocks",
    "recovery_quarantines",
    "recovery_fallbacks",
    "recovery_retries",
    "campaign_shards_completed",
    "campaign_shards_resumed",
    "campaign_retries",
    "campaign_quarantines",
    "campaign_checkpoints_rejected",
];

/// Gauges pre-registered (in this order) by [`Collector::new`].
pub const REGISTERED_GAUGES: [&str; 1] = ["pool_threads"];

struct SpanNode {
    name: String,
    calls: u64,
    total_ns: u128,
    children: Vec<usize>,
}

struct TraceState {
    /// Span arena; node 0 is the synthetic root named `run`.
    spans: Vec<SpanNode>,
    /// Counter registry in registration order.
    counters: Vec<(String, u64)>,
    /// Gauge registry in registration order.
    gauges: Vec<(String, f64)>,
    manifest: Option<RunManifest>,
}

/// A handle to a per-run trace: span tree, metrics registry, and
/// manifest. Cheap to clone (shared `Arc` state).
#[derive(Clone)]
pub struct Collector {
    state: Arc<Mutex<TraceState>>,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

struct Installed {
    collector: Collector,
    /// Span stack of arena indices; last is the currently open span.
    stack: Vec<usize>,
    /// Inside a pool task: spans and gauges suppressed, counters allowed.
    in_task: bool,
}

thread_local! {
    static INSTALLED: RefCell<Vec<Installed>> = const { RefCell::new(Vec::new()) };
}

/// Removes the `Installed` frame pushed by `install`/`run_task`, even on
/// panic, so a poisoned frame never leaks into unrelated code.
struct InstallGuard;

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED.with(|cell| {
            cell.borrow_mut().pop();
        });
    }
}

impl Collector {
    /// Creates an empty collector with the canonical metrics
    /// pre-registered (see [`REGISTERED_COUNTERS`] /
    /// [`REGISTERED_GAUGES`]).
    pub fn new() -> Self {
        let root = SpanNode {
            name: "run".to_owned(),
            calls: 0,
            total_ns: 0,
            children: Vec::new(),
        };
        Self {
            state: Arc::new(Mutex::new(TraceState {
                spans: vec![root],
                counters: REGISTERED_COUNTERS
                    .iter()
                    .map(|name| ((*name).to_owned(), 0))
                    .collect(),
                gauges: REGISTERED_GAUGES
                    .iter()
                    .map(|name| ((*name).to_owned(), 0.0))
                    .collect(),
                manifest: None,
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, TraceState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Installs this collector on the current thread for the duration of
    /// `f`. Instrumentation calls inside `f` record into this collector;
    /// any previously installed collector is restored on exit
    /// (panic-safe). Spans opened inside `f` nest under the root.
    pub fn install<T>(&self, f: impl FnOnce() -> T) -> T {
        self.enter(false, f)
    }

    /// Installs this collector on the current thread in *task mode*:
    /// counters still accumulate, but spans and gauges are suppressed.
    ///
    /// `qfc-runtime` wraps every pool task body in this — on worker
    /// threads and on the serial short-circuit path alike — so telemetry
    /// can never depend on which thread ran a task.
    pub fn run_task<T>(&self, f: impl FnOnce() -> T) -> T {
        self.enter(true, f)
    }

    fn enter<T>(&self, in_task: bool, f: impl FnOnce() -> T) -> T {
        INSTALLED.with(|cell| {
            cell.borrow_mut().push(Installed {
                collector: self.clone(),
                stack: vec![0],
                in_task,
            });
        });
        let _guard = InstallGuard;
        f()
    }

    /// Returns `node` = index of the child of `parent` named `name`,
    /// creating it if absent, and bumps its call count.
    fn enter_span(&self, parent: usize, name: &str) -> usize {
        let mut state = self.lock();
        let existing = state.spans[parent]
            .children
            .iter()
            .copied()
            .find(|&c| state.spans[c].name == name);
        let node = match existing {
            Some(node) => node,
            None => {
                let node = state.spans.len();
                state.spans.push(SpanNode {
                    name: name.to_owned(),
                    calls: 0,
                    total_ns: 0,
                    children: Vec::new(),
                });
                state.spans[parent].children.push(node);
                node
            }
        };
        state.spans[node].calls += 1;
        node
    }

    fn exit_span(&self, node: usize, elapsed_ns: u128) {
        let mut state = self.lock();
        state.spans[node].total_ns += elapsed_ns;
    }

    fn counter_add(&self, name: &str, delta: u64) {
        let mut state = self.lock();
        match state.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += delta,
            None => state.counters.push((name.to_owned(), delta)),
        }
    }

    fn gauge_set(&self, name: &str, value: f64) {
        let mut state = self.lock();
        match state.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => state.gauges.push((name.to_owned(), value)),
        }
    }

    /// Records the manifest for this run (last write wins).
    pub fn set_manifest(&self, manifest: RunManifest) {
        self.lock().manifest = Some(manifest);
    }

    /// Returns the recorded manifest, if any.
    pub fn manifest(&self) -> Option<RunManifest> {
        self.lock().manifest.clone()
    }

    /// Takes a consistent copy of the collected trace, metrics, and
    /// manifest for export.
    pub fn snapshot(&self) -> TraceSnapshot {
        let state = self.lock();
        fn build(state: &TraceState, node: usize) -> SpanData {
            let n = &state.spans[node];
            SpanData {
                name: n.name.clone(),
                calls: n.calls,
                total_ns: n.total_ns,
                children: n.children.iter().map(|&c| build(state, c)).collect(),
            }
        }
        TraceSnapshot {
            spans: build(&state, 0),
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            manifest: state.manifest.clone(),
        }
    }
}

/// The collector installed on the current thread, if any.
///
/// `qfc-runtime` captures this on the driver thread and re-installs it
/// (in task mode) inside pool workers so counters keep flowing.
pub fn current() -> Option<Collector> {
    INSTALLED.with(|cell| cell.borrow().last().map(|i| i.collector.clone()))
}

/// `true` when a collector is installed on the current thread.
pub fn enabled() -> bool {
    INSTALLED.with(|cell| !cell.borrow().is_empty())
}

/// RAII guard returned by [`span`]; records wall-time and closes the
/// span when dropped. Not `Send`: spans belong to the thread that opened
/// them.
pub struct SpanGuard {
    open: Option<(Collector, usize, Instant)>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((collector, node, start)) = self.open.take() {
            collector.exit_span(node, start.elapsed().as_nanos());
            INSTALLED.with(|cell| {
                if let Some(installed) = cell.borrow_mut().last_mut() {
                    if installed.stack.last() == Some(&node) {
                        installed.stack.pop();
                    }
                }
            });
        }
    }
}

/// Opens a named span nested under the innermost open span.
///
/// No-op (returns an inert guard) when no collector is installed or when
/// running inside a pool task — see the crate-level determinism
/// contract. Repeated spans with the same name under the same parent
/// aggregate into one node (`calls` increments, wall-times sum).
pub fn span(name: &str) -> SpanGuard {
    let open = INSTALLED.with(|cell| {
        let mut borrow = cell.borrow_mut();
        let installed = borrow.last_mut()?;
        if installed.in_task {
            return None;
        }
        let parent = installed.stack.last().copied().unwrap_or(0);
        let collector = installed.collector.clone();
        let node = collector.enter_span(parent, name);
        installed.stack.push(node);
        Some((collector, node, Instant::now())) // qfc-lint: allow(determinism) — wall-clock span timing is presentation-only; never feeds simulation results
    });
    SpanGuard {
        open,
        _not_send: PhantomData,
    }
}

/// Adds `delta` to the named counter. Allowed anywhere (driver thread or
/// pool task); no-op without an installed collector.
pub fn counter_add(name: &str, delta: u64) {
    if let Some(collector) = current() {
        collector.counter_add(name, delta);
    }
}

/// Sets the named gauge. Driver-thread-only: suppressed inside pool
/// tasks (last-write from racing workers would be nondeterministic);
/// no-op without an installed collector.
pub fn gauge_set(name: &str, value: f64) {
    let collector = INSTALLED.with(|cell| {
        let borrow = cell.borrow();
        let installed = borrow.last()?;
        if installed.in_task {
            return None;
        }
        Some(installed.collector.clone())
    });
    if let Some(collector) = collector {
        collector.gauge_set(name, value);
    }
}

/// Records the run manifest on the installed collector, if any.
pub fn set_manifest(manifest: RunManifest) {
    if let Some(collector) = current() {
        collector.set_manifest(manifest);
    }
}

/// The manifest recorded on the installed collector, if any.
pub fn current_manifest() -> Option<RunManifest> {
    current().and_then(|c| c.manifest())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_without_collector() {
        assert!(!enabled());
        let _s = span("orphan");
        counter_add("shots_simulated", 5);
        gauge_set("pool_threads", 3.0);
        // Nothing observable happened; a fresh collector stays pristine.
        let c = Collector::new();
        let snap = c.snapshot();
        assert_eq!(snap.counter("shots_simulated"), Some(0));
        assert!(snap.spans.children.is_empty());
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let c = Collector::new();
        c.install(|| {
            for _ in 0..3 {
                let _outer = span("outer");
                let _inner = span("inner");
            }
        });
        let snap = c.snapshot();
        assert_eq!(snap.spans.children.len(), 1);
        let outer = &snap.spans.children[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.calls, 3);
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].name, "inner");
        assert_eq!(outer.children[0].calls, 3);
    }

    #[test]
    fn task_mode_suppresses_spans_and_gauges_but_not_counters() {
        let c = Collector::new();
        c.install(|| {
            c.run_task(|| {
                let _s = span("hidden");
                gauge_set("pool_threads", 99.0);
                counter_add("shots_simulated", 7);
            });
        });
        let snap = c.snapshot();
        assert!(snap.spans.children.is_empty());
        assert_eq!(snap.gauge("pool_threads"), Some(0.0));
        assert_eq!(snap.counter("shots_simulated"), Some(7));
    }

    #[test]
    fn install_restores_previous_collector() {
        let a = Collector::new();
        let b = Collector::new();
        a.install(|| {
            counter_add("shots_simulated", 1);
            b.install(|| counter_add("shots_simulated", 10));
            counter_add("shots_simulated", 2);
        });
        assert_eq!(a.snapshot().counter("shots_simulated"), Some(3));
        assert_eq!(b.snapshot().counter("shots_simulated"), Some(10));
    }

    #[test]
    fn registry_order_is_canonical() {
        let c = Collector::new();
        c.install(|| {
            // Touch in scrambled order; registration order must win.
            counter_add("shards_executed", 1);
            counter_add("shots_simulated", 1);
            counter_add("custom_metric", 4);
        });
        let snap = c.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let canonical: Vec<&str> = REGISTERED_COUNTERS.to_vec();
        assert_eq!(&names[..canonical.len()], &canonical[..]);
        assert_eq!(names.last(), Some(&"custom_metric"));
    }

    #[test]
    fn counters_sum_across_threads() {
        let c = Collector::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| c.run_task(|| counter_add("shots_simulated", 25)));
            }
        });
        assert_eq!(c.snapshot().counter("shots_simulated"), Some(100));
    }

    #[test]
    fn manifest_round_trips_through_collector() {
        let c = Collector::new();
        c.install(|| {
            set_manifest(RunManifest {
                seed: 42,
                config_digest: "deadbeefdeadbeef".to_owned(),
                threads: 4,
                qfc_threads_env: None,
                fault_events: 0,
                fault_kinds: Vec::new(),
                crate_version: "0.1.0".to_owned(),
                campaign: None,
            });
            assert_eq!(current_manifest().map(|m| m.seed), Some(42));
        });
        assert_eq!(c.manifest().map(|m| m.threads), Some(4));
    }
}
