//! Fiber-link budget: how far the comb's entanglement reaches.
//!
//! The paper positions the source for "secure communications"; the
//! deployment question is the distance budget. Post-selected time-bin
//! entanglement is loss-tolerant — visibility survives attenuation until
//! the *dark-count floor* of the detectors overtakes the thinned signal,
//! at which point CHSH (and the key rate) collapse. This module computes
//! that reach channel by channel.

use serde::{Deserialize, Serialize};

use qfc_quantum::chsh::{s_from_visibility, CLASSICAL_BOUND};

use crate::qkd::{qber_from_visibility, secret_key_fraction};
use crate::source::QfcSource;
use crate::timebin::{channel_state_model, TimeBinConfig};

/// A symmetric fiber link from the source to each user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiberLink {
    /// One-way fiber length per arm, km.
    pub length_km: f64,
    /// Fiber attenuation, dB/km (0.2 for SMF-28 at 1550 nm).
    pub loss_db_per_km: f64,
}

impl FiberLink {
    /// Standard single-mode fiber at 1550 nm.
    pub fn smf28(length_km: f64) -> Self {
        Self {
            length_km,
            loss_db_per_km: 0.2,
        }
    }

    /// Power transmission of one arm.
    pub fn transmission(&self) -> f64 {
        10f64.powf(-self.loss_db_per_km * self.length_km / 10.0)
    }
}

/// Link-budget figures at one distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkPoint {
    /// One-way arm length, km.
    pub length_km: f64,
    /// Post-selected coincidence probability per frame.
    pub coincidence_prob: f64,
    /// Delivered coincidence rate at the frame rate, Hz.
    pub coincidence_rate_hz: f64,
    /// Effective fringe visibility after accidentals.
    pub effective_visibility: f64,
    /// CHSH S implied by that visibility.
    pub s_value: f64,
    /// Secret-key rate, bit/s.
    pub key_rate_hz: f64,
}

impl LinkPoint {
    /// `true` while the link still violates the classical bound.
    pub fn violates_chsh(&self) -> bool {
        self.s_value > CLASSICAL_BOUND
    }
}

/// Computes the link budget of channel `m` over a sweep of arm lengths.
///
/// # Panics
///
/// Panics if the source is not in the double-pulse regime or the sweep
/// is empty.
pub fn link_budget(
    source: &QfcSource,
    config: &TimeBinConfig,
    m: u32,
    frame_rate_hz: f64,
    lengths_km: &[f64],
) -> Vec<LinkPoint> {
    assert!(!lengths_km.is_empty(), "empty length sweep");
    let model = channel_state_model(source, config, m);
    lengths_km
        .iter()
        .map(|&length_km| {
            let eta_link = FiberLink::smf28(length_km).transmission();
            let eta = config.arm_efficiency * eta_link;
            // Phase-averaged post-selected signal and the accidental
            // floor; darks do not attenuate with the link.
            let p_sig = model.mu * eta * eta / 16.0;
            let p_single = model.mu * eta / 2.0 + config.dark_prob_per_gate;
            let p_acc = p_single * p_single;
            let p_total = p_sig + p_acc;
            let v_eff = model.state_visibility * p_sig / p_total;
            let qber = qber_from_visibility(v_eff);
            let rate = p_total * frame_rate_hz;
            LinkPoint {
                length_km,
                coincidence_prob: p_total,
                coincidence_rate_hz: rate,
                effective_visibility: v_eff,
                s_value: s_from_visibility(v_eff),
                key_rate_hz: 0.5 * rate * secret_key_fraction(qber),
            }
        })
        .collect()
}

/// Maximum arm length (km) at which channel `m` still violates CHSH, by
/// bisection on the link budget. Returns `None` if even 0 km fails.
pub fn chsh_reach_km(
    source: &QfcSource,
    config: &TimeBinConfig,
    m: u32,
    frame_rate_hz: f64,
) -> Option<f64> {
    let at = |km: f64| {
        link_budget(source, config, m, frame_rate_hz, &[km])[0].s_value
    };
    if at(0.0) <= CLASSICAL_BOUND {
        return None;
    }
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    while at(hi) > CLASSICAL_BOUND {
        hi *= 2.0;
        if hi > 20_000.0 {
            return Some(hi); // effectively unlimited in this model
        }
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if at(mid) > CLASSICAL_BOUND {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (QfcSource, TimeBinConfig) {
        (QfcSource::paper_device_timebin(), TimeBinConfig::paper())
    }

    #[test]
    fn transmission_is_exponential() {
        let l = FiberLink::smf28(50.0);
        assert!((l.transmission() - 0.1).abs() < 1e-12, "{}", l.transmission());
    }

    #[test]
    fn zero_length_matches_local_experiment() {
        let (source, config) = setup();
        let pts = link_budget(&source, &config, 1, 10.0e6, &[0.0]);
        // Local visibility ≈ the §IV operating point.
        assert!((pts[0].effective_visibility - 0.81).abs() < 0.05);
        assert!(pts[0].violates_chsh());
    }

    #[test]
    fn visibility_and_key_decline_with_distance() {
        let (source, config) = setup();
        let pts = link_budget(&source, &config, 1, 10.0e6, &[0.0, 25.0, 50.0, 100.0, 200.0]);
        for w in pts.windows(2) {
            assert!(w[1].effective_visibility <= w[0].effective_visibility + 1e-12);
            assert!(w[1].key_rate_hz <= w[0].key_rate_hz + 1e-12);
        }
        // Very long links lose the violation entirely.
        let far = link_budget(&source, &config, 1, 10.0e6, &[400.0]);
        assert!(!far[0].violates_chsh(), "S = {}", far[0].s_value);
    }

    #[test]
    fn reach_is_finite_and_useful() {
        let (source, config) = setup();
        let reach = chsh_reach_km(&source, &config, 1, 10.0e6).expect("violates locally");
        // Dark-count-limited reach: tens to a couple hundred km.
        assert!(reach > 20.0 && reach < 500.0, "reach {reach} km");
        // Just inside the reach the link violates; outside it doesn't.
        let inside = link_budget(&source, &config, 1, 10.0e6, &[reach * 0.95]);
        let outside = link_budget(&source, &config, 1, 10.0e6, &[reach * 1.05]);
        assert!(inside[0].violates_chsh());
        assert!(!outside[0].violates_chsh());
    }

    #[test]
    #[should_panic(expected = "empty length sweep")]
    fn empty_sweep_rejected() {
        let (source, config) = setup();
        let _ = link_budget(&source, &config, 1, 10.0e6, &[]);
    }
}
