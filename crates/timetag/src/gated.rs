//! Gated detection and afterpulsing — the operating mode of the
//! telecom InGaAs detectors used in the original experiments.
//!
//! Gating confines sensitivity (and dark counts) to short windows
//! synchronized to the pump frames, improving the effective CAR;
//! afterpulsing re-fires the detector with some probability after each
//! click, adding correlated noise that gating alone cannot remove.

use qfc_mathkit::cast;
use rand::Rng;
use serde::{Deserialize, Serialize};

use qfc_mathkit::rng::bernoulli;

use crate::detector::SinglePhotonDetector;
use crate::events::TagStream;

/// A gated single-photon detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatedDetector {
    /// Underlying (free-running) detector parameters.
    pub base: SinglePhotonDetector,
    /// Gate repetition period, ps.
    pub gate_period_ps: i64,
    /// Gate open width, ps.
    pub gate_width_ps: i64,
    /// Probability that a click re-arms as an afterpulse in one of the
    /// following gates.
    pub afterpulse_probability: f64,
    /// Exponential decay of afterpulsing over subsequent gates.
    pub afterpulse_decay_gates: f64,
}

impl GatedDetector {
    /// The id201-class gated InGaAs detector of the experiments: 10-MHz
    /// gating with 2-ns gates, a few percent afterpulsing.
    pub fn ingaas_paper() -> Self {
        Self {
            base: SinglePhotonDetector::ingaas_paper(),
            gate_period_ps: 100_000, // 10 MHz
            gate_width_ps: 2_000,
            afterpulse_probability: 0.03,
            afterpulse_decay_gates: 5.0,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of physical range.
    pub fn validate(&self) {
        self.base.validate();
        assert!(self.gate_period_ps > 0, "gate period must be positive");
        assert!(
            self.gate_width_ps > 0 && self.gate_width_ps <= self.gate_period_ps,
            "gate width must be positive and fit in the period"
        );
        assert!(
            (0.0..1.0).contains(&self.afterpulse_probability),
            "afterpulse probability must be in [0, 1)"
        );
        assert!(self.afterpulse_decay_gates > 0.0, "decay must be positive");
    }

    /// Fraction of the time the detector is sensitive.
    pub fn duty_cycle(&self) -> f64 {
        cast::to_f64(self.gate_width_ps) / cast::to_f64(self.gate_period_ps)
    }

    /// `true` when timestamp `t` falls inside an open gate.
    pub fn in_gate(&self, t_ps: i64) -> bool {
        t_ps.rem_euclid(self.gate_period_ps) < self.gate_width_ps
    }

    /// Effective dark counts per second (the free-running dark rate
    /// suppressed by the duty cycle).
    pub fn effective_dark_rate_hz(&self) -> f64 {
        self.base.dark_count_rate_hz * self.duty_cycle()
    }

    /// Detects the photon stream: free-running detection, then the gate
    /// mask, then afterpulsing injection.
    pub fn detect<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        arrivals_ps: &[i64],
        duration_ps: i64,
    ) -> TagStream {
        self.validate();
        let raw = self.base.detect(rng, arrivals_ps, duration_ps);
        let mut clicks: Vec<i64> = raw
            .as_slice()
            .iter()
            .copied()
            .filter(|&t| self.in_gate(t))
            .collect();
        // Afterpulsing: each click may spawn one echo in a later gate,
        // geometrically distributed with the configured decay. Echoes
        // append to the click buffer directly; iterating by index over
        // the original length keeps echoes from re-echoing and keeps
        // the RNG draw order identical to a two-buffer formulation.
        let n_gated = clicks.len();
        for k in 0..n_gated {
            let t = clicks[k];
            if bernoulli(rng, self.afterpulse_probability) {
                let gates_later = 1.0
                    + (-self.afterpulse_decay_gates * rng.gen::<f64>().ln().abs()).abs();
                let echo = t + (cast::f64_to_i64(gates_later)) * self.gate_period_ps;
                if echo < duration_ps {
                    clicks.push(echo);
                }
            }
        }
        clicks.sort_unstable();
        TagStream::from_sorted(clicks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfc_mathkit::rng::rng_from_seed;

    const SECOND_PS: i64 = 1_000_000_000_000;

    fn quiet_gated() -> GatedDetector {
        GatedDetector {
            base: SinglePhotonDetector {
                efficiency: 1.0,
                dark_count_rate_hz: 0.0,
                jitter_sigma_ps: 0.0,
                dead_time_ps: 0,
            },
            gate_period_ps: 100_000,
            gate_width_ps: 2_000,
            afterpulse_probability: 0.0,
            afterpulse_decay_gates: 5.0,
        }
    }

    #[test]
    fn duty_cycle_and_dark_suppression() {
        let d = GatedDetector::ingaas_paper();
        assert!((d.duty_cycle() - 0.02).abs() < 1e-12);
        assert!(
            (d.effective_dark_rate_hz() - 0.02 * d.base.dark_count_rate_hz).abs() < 1e-9
        );
    }

    #[test]
    fn in_gate_classification() {
        let d = quiet_gated();
        assert!(d.in_gate(0));
        assert!(d.in_gate(1_999));
        assert!(!d.in_gate(2_000));
        assert!(!d.in_gate(99_999));
        assert!(d.in_gate(100_000));
        assert!(d.in_gate(-99_000)); // negative times wrap correctly
    }

    #[test]
    fn gate_mask_drops_out_of_gate_photons() {
        let mut rng = rng_from_seed(61);
        let d = quiet_gated();
        // One in-gate and one out-of-gate arrival per period.
        let arrivals: Vec<i64> = (0..100)
            .flat_map(|k| [k * 100_000 + 500, k * 100_000 + 50_000])
            .collect();
        let out = d.detect(&mut rng, &arrivals, SECOND_PS);
        assert_eq!(out.len(), 100);
        assert!(out.as_slice().iter().all(|&t| d.in_gate(t)));
    }

    #[test]
    fn afterpulsing_adds_correlated_clicks() {
        let mut rng = rng_from_seed(62);
        let mut d = quiet_gated();
        d.afterpulse_probability = 0.5;
        let arrivals: Vec<i64> = (0..10_000).map(|k| k * 100_000 + 500).collect();
        let out = d.detect(&mut rng, &arrivals, 2 * SECOND_PS);
        let extra = out.len() as f64 / 10_000.0 - 1.0;
        assert!((extra - 0.5).abs() < 0.1, "afterpulse fraction {extra}");
        // Echoes land in gates too (multiples of the period later).
        assert!(out.as_slice().iter().all(|&t| d.in_gate(t)));
    }

    #[test]
    fn gating_improves_dark_contrast() {
        let mut rng = rng_from_seed(63);
        let mut d = quiet_gated();
        d.base.dark_count_rate_hz = 10_000.0;
        let out = d.detect(&mut rng, &[], 10 * SECOND_PS);
        // Only the in-gate 2 % of darks survive.
        let rate = out.rate_hz(10.0);
        assert!((rate - 200.0).abs() < 40.0, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "gate width")]
    fn oversized_gate_rejected() {
        let mut d = quiet_gated();
        d.gate_width_ps = d.gate_period_ps + 1;
        d.validate();
    }
}
