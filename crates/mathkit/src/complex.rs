//! Double-precision complex numbers.
//!
//! The crate implements its own complex type rather than pulling in an
//! external numerics dependency; everything downstream (quantum states,
//! spectral amplitudes, interferometer transfer functions) is built on
//! [`Complex64`].

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use qfc_mathkit::complex::Complex64;
///
/// let z = Complex64::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity `0 + 0i`.
pub const C_ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
/// The multiplicative identity `1 + 0i`.
pub const C_ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
/// The imaginary unit `0 + 1i`.
pub const C_I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

impl Complex64 {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// ```
    /// use qfc_mathkit::complex::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!(z.re.abs() < 1e-15);
    /// assert!((z.im - 2.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}`, a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|` (hypot-based, robust to overflow).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `z == 0`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        Self::new(self.abs().ln(), self.arg())
    }

    /// Principal square root.
    ///
    /// ```
    /// use qfc_mathkit::complex::Complex64;
    /// let z = Complex64::new(-1.0, 0.0).sqrt();
    /// assert!((z.im - 1.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        Self::from_polar(r.sqrt(), 0.5 * theta)
    }

    /// Raises to a real power via the principal branch.
    #[inline]
    pub fn powf(self, p: f64) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return if p == 0.0 { C_ONE } else { C_ZERO };
        }
        Self::from_polar(self.abs().powf(p), self.arg() * p)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// `true` when `|z| ≤ tol` component-wise.
    #[inline]
    pub fn approx_zero(self, tol: f64) -> bool {
        self.re.abs() <= tol && self.im.abs() <= tol
    }

    /// `true` when `self` and `other` differ by at most `tol` in each part.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self - other).approx_zero(tol)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w ≡ z·w⁻¹
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Add<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: f64) -> Self {
        Self::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: f64) -> Self {
        Self::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Add<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        rhs + self
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(C_ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Self {
        iter.fold(C_ZERO, |a, b| a + *b)
    }
}

impl Product for Complex64 {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(C_ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn construction_and_parts() {
        let z = Complex64::new(1.5, -2.5);
        assert_eq!(z.re, 1.5);
        assert_eq!(z.im, -2.5);
        assert_eq!(Complex64::real(3.0), Complex64::new(3.0, 0.0));
        assert_eq!(Complex64::imag(3.0), Complex64::new(0.0, 3.0));
        assert_eq!(Complex64::from(2.0), Complex64::real(2.0));
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(2.0, -3.0);
        assert_eq!(z + C_ZERO, z);
        assert_eq!(z * C_ONE, z);
        assert!((z * z.inv()).approx_eq(C_ONE, TOL));
        assert_eq!(-z + z, C_ZERO);
        assert_eq!(z - z, C_ZERO);
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        // (1+2i)(3-4i) = 3 -4i + 6i + 8 = 11 + 2i
        assert!((a * b).approx_eq(Complex64::new(11.0, 2.0), TOL));
    }

    #[test]
    fn division_is_inverse_of_multiplication() {
        let a = Complex64::new(-2.5, 0.7);
        let b = Complex64::new(0.3, 4.0);
        assert!(((a * b) / b).approx_eq(a, TOL));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((C_I * C_I).approx_eq(-C_ONE, TOL));
    }

    #[test]
    fn conj_and_norms() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!((z * z.conj()).approx_eq(Complex64::real(25.0), TOL));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::new(-1.25, 0.5);
        let back = Complex64::from_polar(z.abs(), z.arg());
        assert!(back.approx_eq(z, TOL));
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..16 {
            let theta = k as f64 * 0.5;
            assert!((Complex64::cis(theta).abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn exp_and_ln_are_inverse() {
        let z = Complex64::new(0.3, -1.1);
        assert!(z.exp().ln().approx_eq(z, 1e-10));
    }

    #[test]
    fn euler_identity() {
        let z = Complex64::imag(std::f64::consts::PI).exp();
        assert!(z.approx_eq(-C_ONE, 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-1.0, 0.0), (3.0, -4.0), (0.0, 2.0)] {
            let z = Complex64::new(re, im);
            let s = z.sqrt();
            assert!((s * s).approx_eq(z, 1e-10), "sqrt failed for {z}");
        }
    }

    #[test]
    fn powf_matches_repeated_multiplication() {
        let z = Complex64::new(1.2, -0.4);
        assert!(z.powf(3.0).approx_eq(z * z * z, 1e-10));
        assert_eq!(C_ZERO.powf(2.0), C_ZERO);
        assert_eq!(C_ZERO.powf(0.0), C_ONE);
    }

    #[test]
    fn sum_and_product_iterators() {
        let xs = [C_ONE, C_I, Complex64::new(2.0, 1.0)];
        let s: Complex64 = xs.iter().sum();
        assert!(s.approx_eq(Complex64::new(3.0, 2.0), TOL));
        let p: Complex64 = xs.iter().copied().product();
        // (1)(i)(2+i) = i(2+i) = -1 + 2i
        assert!(p.approx_eq(Complex64::new(-1.0, 2.0), TOL));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::new(1.0, 1.0);
        z += C_ONE;
        assert_eq!(z, Complex64::new(2.0, 1.0));
        z -= C_I;
        assert_eq!(z, Complex64::new(2.0, 0.0));
        z *= Complex64::new(0.0, 2.0);
        assert_eq!(z, Complex64::new(0.0, 4.0));
        z /= Complex64::new(0.0, 2.0);
        assert!(z.approx_eq(Complex64::new(2.0, 0.0), TOL));
        z *= 3.0;
        assert!(z.approx_eq(Complex64::new(6.0, 0.0), TOL));
    }

    #[test]
    fn mixed_real_ops() {
        let z = Complex64::new(1.0, 2.0);
        assert_eq!(z + 1.0, Complex64::new(2.0, 2.0));
        assert_eq!(z - 1.0, Complex64::new(0.0, 2.0));
        assert_eq!(z * 2.0, Complex64::new(2.0, 4.0));
        assert_eq!(z / 2.0, Complex64::new(0.5, 1.0));
        assert_eq!(2.0 * z, Complex64::new(2.0, 4.0));
        assert_eq!(1.0 + z, Complex64::new(2.0, 2.0));
    }
}
