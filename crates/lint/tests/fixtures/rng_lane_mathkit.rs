//@ crate: qfc-mathkit
// qfc-mathkit implements the lane discipline itself, so the rng-lane
// rule is scoped out of it: no marker, no finding expected.
pub fn implementing_the_lanes() {
    let _rng = StdRng::seed_from_u64(42);
}
