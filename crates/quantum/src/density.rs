//! Density matrices of qubit registers, with the noise channels that
//! model the experiment's imperfections.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_mathkit::cmatrix::CMatrix;
use qfc_mathkit::complex::Complex64;
use qfc_mathkit::hermitian::{eigenvalues_into, JacobiStrategy};

use crate::ops;
use crate::state::PureState;

/// A density matrix on an `n`-qubit register.
///
/// Maintains Hermiticity and unit trace by construction; positivity is
/// checked via [`DensityMatrix::is_physical`].
///
/// # Examples
///
/// ```
/// use qfc_quantum::density::DensityMatrix;
/// use qfc_quantum::state::PureState;
///
/// let rho = DensityMatrix::from_pure(&PureState::plus());
/// assert!((rho.purity() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityMatrix {
    mat: CMatrix,
    qubits: usize,
}

impl DensityMatrix {
    /// The pure-state density matrix `|ψ⟩⟨ψ|`.
    pub fn from_pure(state: &PureState) -> Self {
        Self {
            mat: ops::projector(state),
            qubits: state.qubits(),
        }
    }

    /// The maximally mixed state `I/2ⁿ`.
    pub fn maximally_mixed(n: usize) -> Self {
        assert!(n > 0 && n <= 20, "qubit count out of supported range");
        Self {
            mat: CMatrix::identity(1 << n).scale(1.0 / cast::to_f64(1 << n)),
            qubits: n,
        }
    }

    /// Builds a density matrix from a raw Hermitian, unit-trace matrix.
    ///
    /// # Errors
    ///
    /// Returns `None` when the matrix is not square power-of-two
    /// dimensional, not Hermitian, or trace differs from 1 beyond `1e-6`.
    pub fn from_matrix(mat: CMatrix) -> Option<Self> {
        if !mat.is_square() {
            return None;
        }
        let dim = mat.rows();
        if dim < 2 || !dim.is_power_of_two() {
            return None;
        }
        if !mat.is_hermitian(1e-8 * mat.max_abs().max(1.0)) {
            return None;
        }
        if (mat.trace().re - 1.0).abs() > 1e-6 || mat.trace().im.abs() > 1e-6 {
            return None;
        }
        Some(Self {
            mat,
            qubits: cast::u32_to_usize(dim.trailing_zeros()),
        })
    }

    /// Convex mixture `Σ wᵢ ρᵢ` (weights renormalized).
    ///
    /// # Panics
    ///
    /// Panics on an empty list, mismatched dimensions, or non-positive
    /// total weight.
    pub fn mixture(parts: &[(f64, DensityMatrix)]) -> Self {
        assert!(!parts.is_empty(), "mixture of nothing");
        let qubits = parts[0].1.qubits;
        let dim = 1usize << qubits;
        let total: f64 = parts.iter().map(|(w, _)| *w).sum();
        assert!(total > 0.0, "mixture needs positive total weight");
        let mut acc = CMatrix::zeros(dim, dim);
        for (w, rho) in parts {
            assert_eq!(rho.qubits, qubits, "mixture dimension mismatch");
            assert!(*w >= 0.0, "negative mixture weight");
            acc = &acc + &rho.mat.scale(w / total);
        }
        Self { mat: acc, qubits }
    }

    /// Number of qubits.
    pub fn qubits(&self) -> usize {
        self.qubits
    }

    /// Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        self.mat.rows()
    }

    /// The underlying matrix.
    pub fn as_matrix(&self) -> &CMatrix {
        &self.mat
    }

    /// Purity `Tr ρ²` (1 for pure states, `1/2ⁿ` for maximally mixed).
    pub fn purity(&self) -> f64 {
        self.mat.trace_of_product(&self.mat).re
    }

    /// Expectation value `Tr(ρA)` of a Hermitian observable.
    ///
    /// Computed by [`CMatrix::trace_of_product`]: only the diagonal of
    /// the product is accumulated, with no intermediate matrix — the
    /// value is bit-identical to `(ρ·A).trace().re`.
    pub fn expectation(&self, op: &CMatrix) -> f64 {
        self.mat.trace_of_product(op).re
    }

    /// Probability of the outcome described by projector `p`:
    /// `Tr(ρ·p)`, clamped to `[0, 1]` against round-off.
    pub fn probability(&self, p: &CMatrix) -> f64 {
        self.expectation(p).clamp(0.0, 1.0)
    }

    /// Unitary evolution `UρU†`.
    pub fn evolve(&self, u: &CMatrix) -> Self {
        Self {
            mat: &(u * &self.mat) * &u.adjoint(),
            qubits: self.qubits,
        }
    }

    /// Tensor product with another register.
    pub fn tensor(&self, other: &Self) -> Self {
        Self {
            mat: self.mat.kron(&other.mat),
            qubits: self.qubits + other.qubits,
        }
    }

    /// Partial trace keeping only the listed qubits (ascending order of
    /// the result follows the order given in `keep`).
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty, has duplicates, or indexes out of range.
    pub fn partial_trace_keep(&self, keep: &[usize]) -> Self {
        let kd = 1usize << keep.len();
        let mut out = CMatrix::zeros(kd, kd);
        self.partial_trace_keep_into(keep, &mut out);
        Self {
            mat: out,
            qubits: keep.len(),
        }
    }

    /// Scratch-buffer variant of [`Self::partial_trace_keep`]: writes
    /// the reduced matrix into `out` (reallocated only on a shape
    /// change), so repeated reductions — per-channel marginal scans —
    /// run without per-call matrix or bookkeeping allocations.
    ///
    /// # Panics
    ///
    /// As [`Self::partial_trace_keep`].
    pub fn partial_trace_keep_into(&self, keep: &[usize], out: &mut CMatrix) {
        let n = self.qubits;
        assert!(!keep.is_empty(), "must keep at least one qubit");
        assert!(keep.iter().all(|&q| q < n), "qubit index out of range");
        assert!(n <= 64, "register too large for partial trace");
        let mut seen = 0u64;
        for &q in keep {
            assert!(seen & (1 << q) == 0, "duplicate qubit in keep list");
            seen |= 1 << q;
        }
        let mut traced = [0usize; 64];
        let mut tn = 0usize;
        for q in 0..n {
            if seen & (1 << q) == 0 {
                traced[tn] = q;
                tn += 1;
            }
        }
        let traced = &traced[..tn];
        let kd = 1usize << keep.len();
        let td = 1usize << tn;

        // Maps (kept-subsystem index, traced-subsystem index) → register
        // basis index. Qubit 0 is the most significant bit.
        let compose = |ki: usize, ti: usize| -> usize {
            let mut idx = 0usize;
            for (pos, &q) in keep.iter().enumerate() {
                let bit = (ki >> (keep.len() - 1 - pos)) & 1;
                idx |= bit << (n - 1 - q);
            }
            for (pos, &q) in traced.iter().enumerate() {
                let bit = (ti >> (tn - 1 - pos)) & 1;
                idx |= bit << (n - 1 - q);
            }
            idx
        };

        if out.rows() != kd || out.cols() != kd {
            *out = CMatrix::zeros(kd, kd);
        }
        for i in 0..kd {
            for j in 0..kd {
                let mut acc = Complex64::real(0.0);
                for t in 0..td {
                    acc += self.mat[(compose(i, t), compose(j, t))];
                }
                out[(i, j)] = acc;
            }
        }
    }

    /// Eigenvalues of the density matrix (ascending).
    pub fn eigenvalues(&self) -> Vec<f64> {
        let mut work = CMatrix::zeros(self.dim(), self.dim());
        let mut out = Vec::new();
        self.eigenvalues_into(&mut work, &mut out);
        out
    }

    /// Scratch-buffer variant of [`Self::eigenvalues`]: diagonalizes in
    /// `work` and writes the ascending eigenvalues into `out`, both
    /// reused across calls. Values are bit-identical to
    /// [`Self::eigenvalues`].
    pub fn eigenvalues_into(&self, work: &mut CMatrix, out: &mut Vec<f64>) {
        eigenvalues_into(&self.mat, JacobiStrategy::Cyclic, work, out);
    }

    /// `true` when all eigenvalues are ≥ `−tol` (positive semidefinite up
    /// to numerical noise) and the trace is 1.
    pub fn is_physical(&self, tol: f64) -> bool {
        (self.mat.trace().re - 1.0).abs() <= tol
            && self.eigenvalues().iter().all(|&l| l >= -tol)
    }

    /// Von Neumann entropy `−Σ λ ln λ` in nats.
    pub fn von_neumann_entropy(&self) -> f64 {
        self.eigenvalues()
            .iter()
            .filter(|&&l| l > 1e-15)
            .map(|&l| -l * l.ln())
            .sum()
    }

    /// Dephasing channel on qubit `k`: off-diagonal coherences involving
    /// that qubit are scaled by `1 − strength` (`strength = 1` destroys
    /// them) — the effect of interferometer phase noise on a time-bin
    /// qubit.
    pub fn dephase_qubit(&self, k: usize, strength: f64) -> Self {
        assert!(k < self.qubits, "qubit index out of range");
        let s = strength.clamp(0.0, 1.0);
        let z = ops::embed(&ops::pauli_z(), k, self.qubits);
        // ρ → (1 − s/2)·ρ + (s/2)·ZρZ scales coherences by (1 − s).
        let zpz = &(&z * &self.mat) * &z;
        Self {
            mat: &self.mat.scale(1.0 - s / 2.0) + &zpz.scale(s / 2.0),
            qubits: self.qubits,
        }
    }

    /// Global depolarizing channel:
    /// `ρ → (1 − p)·ρ + p·I/2ⁿ` — the effective white noise added by
    /// accidental coincidences and multi-pair events.
    pub fn depolarize(&self, p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        let mixed = Self::maximally_mixed(self.qubits);
        Self::mixture(&[(1.0 - p, self.clone()), (p, mixed)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bell::bell_phi_plus;

    #[test]
    fn pure_state_properties() {
        let rho = DensityMatrix::from_pure(&PureState::plus());
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!(rho.is_physical(1e-10));
        assert!(rho.von_neumann_entropy() < 1e-9);
    }

    #[test]
    fn maximally_mixed_properties() {
        let rho = DensityMatrix::maximally_mixed(2);
        assert!((rho.purity() - 0.25).abs() < 1e-12);
        assert!((rho.von_neumann_entropy() - (4.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn from_matrix_validation() {
        assert!(DensityMatrix::from_matrix(CMatrix::identity(2).scale(0.5)).is_some());
        // Wrong trace.
        assert!(DensityMatrix::from_matrix(CMatrix::identity(2)).is_none());
        // Not Hermitian.
        let m = CMatrix::from_real_rows(&[&[0.5, 0.5], &[0.0, 0.5]]);
        assert!(DensityMatrix::from_matrix(m).is_none());
        // Not a power of two: 3×3.
        let m3 = CMatrix::identity(3).scale(1.0 / 3.0);
        assert!(DensityMatrix::from_matrix(m3).is_none());
    }

    #[test]
    fn mixture_interpolates_purity() {
        let pure = DensityMatrix::from_pure(&PureState::ket0());
        let mixed = DensityMatrix::maximally_mixed(1);
        let half = DensityMatrix::mixture(&[(0.5, pure), (0.5, mixed)]);
        assert!(half.purity() < 1.0 && half.purity() > 0.5);
        assert!((half.as_matrix().trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_trace_of_product_state() {
        let a = DensityMatrix::from_pure(&PureState::ket1());
        let b = DensityMatrix::from_pure(&PureState::plus());
        let ab = a.tensor(&b);
        let ra = ab.partial_trace_keep(&[0]);
        let rb = ab.partial_trace_keep(&[1]);
        assert!(ra.as_matrix().approx_eq(a.as_matrix(), 1e-12));
        assert!(rb.as_matrix().approx_eq(b.as_matrix(), 1e-12));
    }

    #[test]
    fn partial_trace_of_bell_state_is_mixed() {
        let rho = DensityMatrix::from_pure(&bell_phi_plus());
        let reduced = rho.partial_trace_keep(&[0]);
        assert!((reduced.purity() - 0.5).abs() < 1e-12, "maximally mixed marginal");
        // Entropy of entanglement = ln 2.
        assert!((reduced.von_neumann_entropy() - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn evolve_preserves_physicality() {
        let rho = DensityMatrix::from_pure(&PureState::ket0());
        let u = ops::ry(1.1);
        let out = rho.evolve(&u);
        assert!(out.is_physical(1e-10));
        assert!((out.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dephasing_kills_coherence() {
        let rho = DensityMatrix::from_pure(&PureState::plus());
        let full = rho.dephase_qubit(0, 1.0);
        // Fully dephased |+⟩ becomes I/2.
        assert!(full
            .as_matrix()
            .approx_eq(DensityMatrix::maximally_mixed(1).as_matrix(), 1e-12));
        let partial = rho.dephase_qubit(0, 0.4);
        assert!((partial.as_matrix()[(0, 1)].re - 0.3).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_channel_mixes() {
        let rho = DensityMatrix::from_pure(&bell_phi_plus());
        let noisy = rho.depolarize(0.2);
        assert!(noisy.is_physical(1e-10));
        assert!(noisy.purity() < 1.0);
        // p = 1 gives maximally mixed.
        let white = rho.depolarize(1.0);
        assert!(white
            .as_matrix()
            .approx_eq(DensityMatrix::maximally_mixed(2).as_matrix(), 1e-12));
    }

    #[test]
    fn probability_clamped() {
        let rho = DensityMatrix::from_pure(&PureState::ket0());
        let p = ops::projector(&PureState::ket0());
        assert!((rho.probability(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scratch_variants_match_allocating_ones() {
        let rho = DensityMatrix::from_pure(&bell_phi_plus()).depolarize(0.3);
        // Deliberately mis-shaped scratch: both calls must resize.
        let mut work = CMatrix::zeros(1, 1);
        let mut vals = vec![99.0];
        rho.eigenvalues_into(&mut work, &mut vals);
        let direct = rho.eigenvalues();
        assert_eq!(vals.len(), direct.len());
        for (a, b) in vals.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let mut reduced = CMatrix::zeros(1, 1);
        rho.partial_trace_keep_into(&[1], &mut reduced);
        let direct = rho.partial_trace_keep(&[1]);
        assert!(reduced
            .as_slice()
            .iter()
            .zip(direct.as_matrix().as_slice())
            .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()));
    }

    #[test]
    #[should_panic(expected = "keep at least one")]
    fn partial_trace_rejects_empty_keep() {
        let rho = DensityMatrix::maximally_mixed(2);
        let _ = rho.partial_trace_keep(&[]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn partial_trace_rejects_duplicates() {
        let rho = DensityMatrix::maximally_mixed(2);
        let _ = rho.partial_trace_keep(&[0, 0]);
    }
}
