//! Single-photon detector model: efficiency, dark counts, timing jitter,
//! and dead time — the four imperfections that shape every measured
//! coincidence histogram in the paper.

use qfc_mathkit::cast;
use rand::Rng;
use serde::{Deserialize, Serialize};

use qfc_faults::{QfcError, QfcResult};
use qfc_mathkit::rng::{bernoulli, normal, poisson};

use crate::events::TagStream;

/// A click detector (non-number-resolving).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SinglePhotonDetector {
    /// Detection efficiency, 0‥1.
    pub efficiency: f64,
    /// Dark-count rate, Hz.
    pub dark_count_rate_hz: f64,
    /// Gaussian timing jitter (1σ), ps.
    pub jitter_sigma_ps: f64,
    /// Dead time after each click, ps.
    pub dead_time_ps: i64,
}

impl SinglePhotonDetector {
    /// Telecom InGaAs avalanche detector of the era (id Quantique
    /// id201-class): η ≈ 15 %, kHz darks, ~100 ps jitter, µs dead time.
    pub fn ingaas_paper() -> Self {
        Self {
            efficiency: 0.15,
            dark_count_rate_hz: 1000.0,
            jitter_sigma_ps: 100.0,
            dead_time_ps: 10_000_000, // 10 µs
        }
    }

    /// Superconducting nanowire detector, for comparison studies:
    /// η ≈ 80 %, ~100 Hz darks, 30 ps jitter, short dead time.
    pub fn snspd() -> Self {
        Self {
            efficiency: 0.80,
            dark_count_rate_hz: 100.0,
            jitter_sigma_ps: 30.0,
            dead_time_ps: 50_000, // 50 ns
        }
    }

    /// An ideal detector (for analysis-path unit tests).
    pub fn ideal() -> Self {
        Self {
            efficiency: 1.0,
            dark_count_rate_hz: 0.0,
            jitter_sigma_ps: 0.0,
            dead_time_ps: 0,
        }
    }

    /// Fallible constructor: validates every parameter and returns
    /// [`QfcError::InvalidParameter`] on the first violation.
    pub fn try_new(
        efficiency: f64,
        dark_count_rate_hz: f64,
        jitter_sigma_ps: f64,
        dead_time_ps: i64,
    ) -> QfcResult<Self> {
        let det = Self {
            efficiency,
            dark_count_rate_hz,
            jitter_sigma_ps,
            dead_time_ps,
        };
        det.try_validate()?;
        Ok(det)
    }

    /// Fallible form of [`Self::validate`].
    pub fn try_validate(&self) -> QfcResult<()> {
        if !(0.0..=1.0).contains(&self.efficiency) {
            return Err(QfcError::invalid(format!(
                "detector efficiency must be in [0, 1], got {}",
                self.efficiency
            )));
        }
        if self.dark_count_rate_hz.is_nan() || self.dark_count_rate_hz < 0.0 {
            return Err(QfcError::invalid(format!(
                "detector dark rate must be ≥ 0, got {}",
                self.dark_count_rate_hz
            )));
        }
        if self.jitter_sigma_ps.is_nan() || self.jitter_sigma_ps < 0.0 {
            return Err(QfcError::invalid(format!(
                "detector jitter must be ≥ 0, got {}",
                self.jitter_sigma_ps
            )));
        }
        if self.dead_time_ps < 0 {
            return Err(QfcError::invalid(format!(
                "detector dead time must be ≥ 0, got {}",
                self.dead_time_ps
            )));
        }
        Ok(())
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of physical range.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}"); // qfc-lint: allow(panic-reachability) — documented panicking wrapper over try_validate (`# Panics` contract)
        }
    }

    /// Simulates detection of photons with true arrival times
    /// `arrivals_ps` over an observation window `[0, duration_ps)`:
    /// applies efficiency loss, adds Gaussian jitter, injects uniform
    /// dark counts, and enforces dead time.
    ///
    /// # Panics
    ///
    /// Panics if parameters are invalid or `duration_ps <= 0`.
    pub fn detect<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        arrivals_ps: &[i64],
        duration_ps: i64,
    ) -> TagStream {
        self.validate();
        assert!(duration_ps > 0, "duration must be positive");
        let mut clicks: Vec<i64> = Vec::with_capacity(arrivals_ps.len());
        for &t in arrivals_ps {
            if !bernoulli(rng, self.efficiency) {
                continue;
            }
            let t = if self.jitter_sigma_ps > 0.0 {
                t + cast::f64_to_i64(normal(rng, 0.0, self.jitter_sigma_ps).round())
            } else {
                t
            };
            clicks.push(t);
        }
        // Dark counts: Poisson number, uniform over the window.
        let expected_darks = self.dark_count_rate_hz * cast::to_f64(duration_ps) * 1e-12;
        let n_dark = poisson(rng, expected_darks);
        for _ in 0..n_dark {
            clicks.push(cast::f64_to_i64(rng.gen::<f64>() * cast::to_f64(duration_ps)));
        }
        clicks.sort_unstable();
        // Dead time: drop clicks within the hold-off of the last accepted.
        // Compacted in place with a write index — no second buffer.
        // qfc-lint: hot
        if self.dead_time_ps > 0 {
            let mut write = 0usize;
            let mut last: Option<i64> = None;
            for read in 0..clicks.len() {
                let t = clicks[read];
                if last.is_none_or(|l| t - l >= self.dead_time_ps) {
                    clicks[write] = t;
                    write += 1;
                    last = Some(t);
                }
            }
            clicks.truncate(write);
        }
        TagStream::from_sorted(clicks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfc_mathkit::rng::rng_from_seed;

    const SECOND_PS: i64 = 1_000_000_000_000;

    #[test]
    fn ideal_detector_passes_everything() {
        let mut rng = rng_from_seed(1);
        let arrivals: Vec<i64> = (0..100).map(|i| i * 1_000_000).collect();
        let out = SinglePhotonDetector::ideal().detect(&mut rng, &arrivals, SECOND_PS);
        assert_eq!(out.len(), 100);
        assert_eq!(out.as_slice(), arrivals.as_slice());
    }

    #[test]
    fn efficiency_thins_the_stream() {
        let mut rng = rng_from_seed(2);
        let arrivals: Vec<i64> = (0..100_000).map(|i| i * 1_000_000).collect();
        let det = SinglePhotonDetector {
            efficiency: 0.3,
            dark_count_rate_hz: 0.0,
            jitter_sigma_ps: 0.0,
            dead_time_ps: 0,
        };
        let out = det.detect(&mut rng, &arrivals, 200 * SECOND_PS);
        let frac = out.len() as f64 / arrivals.len() as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn dark_counts_at_expected_rate() {
        let mut rng = rng_from_seed(3);
        let det = SinglePhotonDetector {
            efficiency: 1.0,
            dark_count_rate_hz: 5000.0,
            jitter_sigma_ps: 0.0,
            dead_time_ps: 0,
        };
        let out = det.detect(&mut rng, &[], 10 * SECOND_PS);
        let rate = out.rate_hz(10.0);
        assert!((rate - 5000.0).abs() < 150.0, "rate = {rate}");
    }

    #[test]
    fn jitter_spreads_arrivals() {
        let mut rng = rng_from_seed(4);
        let arrivals = vec![500_000i64; 20_000];
        let det = SinglePhotonDetector {
            efficiency: 1.0,
            dark_count_rate_hz: 0.0,
            jitter_sigma_ps: 120.0,
            dead_time_ps: 0,
        };
        let out = det.detect(&mut rng, &arrivals, SECOND_PS);
        let mean: f64 =
            out.as_slice().iter().map(|&t| t as f64).sum::<f64>() / out.len() as f64;
        let var: f64 = out
            .as_slice()
            .iter()
            .map(|&t| (t as f64 - mean).powi(2))
            .sum::<f64>()
            / out.len() as f64;
        assert!((var.sqrt() - 120.0).abs() < 5.0, "σ = {}", var.sqrt());
    }

    #[test]
    fn dead_time_enforced() {
        let mut rng = rng_from_seed(5);
        // Clicks every 100 ns, dead time 250 ns → keep every third.
        let arrivals: Vec<i64> = (0..30).map(|i| i * 100_000).collect();
        let det = SinglePhotonDetector {
            efficiency: 1.0,
            dark_count_rate_hz: 0.0,
            jitter_sigma_ps: 0.0,
            dead_time_ps: 250_000,
        };
        let out = det.detect(&mut rng, &arrivals, SECOND_PS);
        assert_eq!(out.len(), 10);
        assert!(out
            .as_slice()
            .windows(2)
            .all(|w| w[1] - w[0] >= 250_000));
    }

    #[test]
    fn presets_are_valid() {
        SinglePhotonDetector::ingaas_paper().validate();
        SinglePhotonDetector::snspd().validate();
        SinglePhotonDetector::ideal().validate();
        assert!(SinglePhotonDetector::snspd().efficiency > SinglePhotonDetector::ingaas_paper().efficiency);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn invalid_efficiency_rejected() {
        let mut det = SinglePhotonDetector::ideal();
        det.efficiency = 1.5;
        det.validate();
    }

    #[test]
    fn try_new_validates_every_field() {
        assert!(SinglePhotonDetector::try_new(0.15, 1000.0, 100.0, 10_000_000).is_ok());
        let err = SinglePhotonDetector::try_new(1.5, 0.0, 0.0, 0).unwrap_err();
        assert!(matches!(err, QfcError::InvalidParameter { .. }));
        assert!(err.to_string().contains("efficiency"));
        assert!(SinglePhotonDetector::try_new(0.5, -1.0, 0.0, 0).is_err());
        assert!(SinglePhotonDetector::try_new(0.5, f64::NAN, 0.0, 0).is_err());
        assert!(SinglePhotonDetector::try_new(0.5, 0.0, -1.0, 0).is_err());
        assert!(SinglePhotonDetector::try_new(0.5, 0.0, 0.0, -1).is_err());
    }
}
