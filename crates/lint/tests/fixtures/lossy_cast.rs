//@ crate: qfc-core
pub fn ratio(num: usize, den: usize) -> f64 {
    let n = num as f64; //~ ERROR lossy-cast
    let d = den as f64; //~ ERROR lossy-cast
    n / d
}

pub fn truncate(x: f64) -> i64 {
    x as i64 //~ ERROR lossy-cast
}

pub fn allowed(n: usize) -> f64 {
    // qfc-lint: allow(lossy-cast) — fixture: exact below 2^53
    n as f64
}

pub fn reinterpreting_enums_is_not_numeric(x: SomeEnum) -> SomeEnum {
    x
}
