//! Vetted numeric conversions — the only place library code may spell an
//! `as` cast.
//!
//! The workspace-wide `qfc-lint` pass forbids raw `as` numeric casts in
//! library crates (rule `lossy-cast`): the PR-3 bug crop showed that a
//! silent `as` at a comparison or statistics site is a whole defect
//! class (an `as i64` frequency comparison collapsed distinct channels).
//! Every conversion below documents its exact semantics, and the few
//! internal `as` casts carry scoped allow directives. Call sites then
//! say *what they mean* — `to_f64(shots)` or `f64_to_usize(bin)` — and
//! the intent is machine-checkable.
//!
//! Semantics summary:
//!
//! * [`to_f64`] — integer → `f64`, exact for magnitudes ≤ 2^53 (every
//!   shot count, bin index, and event count in this workspace); larger
//!   values round to the nearest representable `f64`, deterministically.
//! * [`f64_to_usize`] / [`f64_to_u64`] / [`f64_to_i64`] — float →
//!   integer with Rust's saturating-cast semantics: truncate toward
//!   zero, clamp to the target range, NaN → 0. Byte-for-byte identical
//!   to the `as` casts they replace.
//! * [`usize_to_u64`] / [`u64_to_usize`] — pointer-width ↔ 64-bit,
//!   lossless on every supported target (checked, saturating fallback).
//! * [`u64_low32`] — explicit low-32-bit truncation for hash/RNG mixing.

/// Integer types that convert to `f64` with well-understood rounding.
///
/// Implemented for the unsigned/signed integer widths the workspace
/// actually converts; conversion is exact for magnitudes up to 2^53 and
/// rounds to nearest (deterministically) beyond.
pub trait ToF64 {
    /// Converts to `f64` (exact ≤ 2^53, round-to-nearest beyond).
    fn to_f64(self) -> f64;
}

impl ToF64 for usize {
    #[inline]
    fn to_f64(self) -> f64 {
        // qfc-lint: allow(lossy-cast) — vetted central conversion: exact for every value ≤ 2^53, round-to-nearest beyond
        self as f64
    }
}

impl ToF64 for u64 {
    #[inline]
    fn to_f64(self) -> f64 {
        // qfc-lint: allow(lossy-cast) — vetted central conversion: exact for every value ≤ 2^53, round-to-nearest beyond
        self as f64
    }
}

impl ToF64 for u128 {
    #[inline]
    fn to_f64(self) -> f64 {
        // qfc-lint: allow(lossy-cast) — vetted central conversion: exact ≤ 2^53; factorial-scale values round to nearest
        self as f64
    }
}

impl ToF64 for i64 {
    #[inline]
    fn to_f64(self) -> f64 {
        // qfc-lint: allow(lossy-cast) — vetted central conversion: exact for |value| ≤ 2^53, round-to-nearest beyond
        self as f64
    }
}

impl ToF64 for isize {
    #[inline]
    fn to_f64(self) -> f64 {
        // qfc-lint: allow(lossy-cast) — vetted central conversion: exact for |value| ≤ 2^53, round-to-nearest beyond
        self as f64
    }
}

impl ToF64 for u32 {
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

impl ToF64 for i32 {
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

impl ToF64 for u16 {
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

impl ToF64 for u8 {
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

/// Converts an integer to `f64`.
///
/// Exact for magnitudes ≤ 2^53 — which covers every shot count, event
/// count, and bin index in this workspace — and deterministic
/// round-to-nearest beyond.
///
/// ```
/// use qfc_mathkit::cast::to_f64;
/// assert_eq!(to_f64(1_000_000usize), 1.0e6);
/// assert_eq!(to_f64(3u64), 3.0);
/// ```
#[inline]
pub fn to_f64<T: ToF64>(x: T) -> f64 {
    x.to_f64()
}

/// `f64` → `usize` with saturating-cast semantics: truncate toward zero,
/// clamp negatives to 0 and overflow to `usize::MAX`, NaN → 0.
///
/// Byte-identical to Rust's `x as usize`, but named and auditable. Used
/// for histogram bin indices and floor-style positions.
///
/// ```
/// use qfc_mathkit::cast::f64_to_usize;
/// assert_eq!(f64_to_usize(3.9), 3);
/// assert_eq!(f64_to_usize(-1.0), 0);
/// assert_eq!(f64_to_usize(f64::NAN), 0);
/// ```
#[inline]
pub fn f64_to_usize(x: f64) -> usize {
    // qfc-lint: allow(lossy-cast) — vetted central conversion: Rust saturating float→int cast (trunc toward zero, clamp, NaN→0)
    x as usize
}

/// `f64` → `u64` with saturating-cast semantics (see [`f64_to_usize`]).
#[inline]
pub fn f64_to_u64(x: f64) -> u64 {
    // qfc-lint: allow(lossy-cast) — vetted central conversion: Rust saturating float→int cast (trunc toward zero, clamp, NaN→0)
    x as u64
}

/// `f64` → `i64` with saturating-cast semantics: truncate toward zero,
/// clamp to `[i64::MIN, i64::MAX]`, NaN → 0.
#[inline]
pub fn f64_to_i64(x: f64) -> i64 {
    // qfc-lint: allow(lossy-cast) — vetted central conversion: Rust saturating float→int cast (trunc toward zero, clamp, NaN→0)
    x as i64
}

/// `usize` → `u64`, lossless on every supported (≤ 64-bit) target;
/// saturates in the pathological >64-bit-pointer case.
#[inline]
pub fn usize_to_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// `u64` → `usize`, lossless on 64-bit targets; saturates on narrower
/// ones rather than wrapping.
#[inline]
pub fn u64_to_usize(n: u64) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// `i64` → `usize`: negative values clamp to 0 (unlike `as`, which
/// wraps them to huge values — the exact trap this module exists to
/// kill); values beyond the target range saturate.
#[inline]
pub fn i64_to_usize(n: i64) -> usize {
    usize::try_from(n.max(0)).unwrap_or(usize::MAX)
}

/// `usize` → `i64`, saturating at `i64::MAX` (beyond any real count).
#[inline]
pub fn usize_to_i64(n: usize) -> i64 {
    i64::try_from(n).unwrap_or(i64::MAX)
}

/// `u32` → `usize`, lossless on every supported (≥ 32-bit) target;
/// saturates rather than wrapping elsewhere.
#[inline]
pub fn u32_to_usize(n: u32) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// `u32` → `i32`, saturating at `i32::MAX`. The workspace uses this for
/// comb-mode indices and `powi` exponents, which are tiny; saturation is
/// strictly safer than the wrap an `as` would produce.
#[inline]
pub fn u32_to_i32(n: u32) -> i32 {
    i32::try_from(n).unwrap_or(i32::MAX)
}

/// `usize` → `u32`, saturating rather than wrapping. Used for `pow`
/// exponents derived from qubit counts (≤ 8 in this workspace).
#[inline]
pub fn usize_to_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// `f64` → `u32` with saturating-cast semantics (see [`f64_to_usize`]).
#[inline]
pub fn f64_to_u32(x: f64) -> u32 {
    // qfc-lint: allow(lossy-cast) — vetted central conversion: Rust saturating float→int cast (trunc toward zero, clamp, NaN→0)
    x as u32
}

/// `f64` → `i32` with saturating-cast semantics: truncate toward zero,
/// clamp to `[i32::MIN, i32::MAX]`, NaN → 0.
#[inline]
pub fn f64_to_i32(x: f64) -> i32 {
    // qfc-lint: allow(lossy-cast) — vetted central conversion: Rust saturating float→int cast (trunc toward zero, clamp, NaN→0)
    x as i32
}

/// Explicit low-32-bit truncation of a 64-bit word, for hash and RNG
/// mixing where discarding the high half is the *point*.
#[inline]
pub fn u64_low32(n: u64) -> u32 {
    u32::try_from(n & 0xFFFF_FFFF).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The helpers must be byte-identical to the `as` casts they
    /// replaced — this is the regression net for the workspace-wide
    /// lossy-cast sweep (no observable value may change).
    #[test]
    fn to_f64_matches_as_semantics() {
        for n in [0usize, 1, 1024, 1 << 20, (1 << 53) - 1] {
            assert_eq!(to_f64(n).to_bits(), (n as f64).to_bits());
        }
        for n in [0u64, 7, u64::MAX, (1 << 53) + 1] {
            assert_eq!(to_f64(n).to_bits(), (n as f64).to_bits());
        }
        for n in [i64::MIN, -5, 0, 5, i64::MAX] {
            assert_eq!(to_f64(n).to_bits(), (n as f64).to_bits());
        }
        assert_eq!(to_f64(u128::MAX).to_bits(), (u128::MAX as f64).to_bits());
    }

    #[test]
    fn float_to_int_matches_as_semantics() {
        for x in [
            -1.5f64,
            -0.0,
            0.0,
            0.49,
            0.5,
            3.999,
            1e18,
            1e300,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ] {
            assert_eq!(f64_to_usize(x), x as usize, "{x}");
            assert_eq!(f64_to_u64(x), x as u64, "{x}");
            assert_eq!(f64_to_i64(x), x as i64, "{x}");
            assert_eq!(f64_to_u32(x), x as u32, "{x}");
            assert_eq!(f64_to_i32(x), x as i32, "{x}");
        }
    }

    #[test]
    fn narrow_int_conversions_saturate() {
        assert_eq!(u32_to_i32(7), 7);
        assert_eq!(u32_to_i32(u32::MAX), i32::MAX);
        assert_eq!(usize_to_u32(8), 8);
        assert_eq!(usize_to_u32(usize::MAX), u32::MAX);
        assert_eq!(i64_to_usize(-3), 0);
        assert_eq!(usize_to_i64(42), 42);
    }

    #[test]
    fn pointer_width_round_trips() {
        assert_eq!(usize_to_u64(usize::MAX) as usize, usize::MAX);
        assert_eq!(u64_to_usize(12345), 12345usize);
        assert_eq!(u64_low32(0xDEAD_BEEF_0000_0001), 1);
        assert_eq!(u64_low32(u64::MAX), u32::MAX);
    }
}
