//! Multi-user multiplexing — the intro's "frequency multiplexing to
//! enable high dimensional multi-user operation": each symmetric channel
//! pair of the comb serves one user pair of a star network, with the
//! source in the middle distributing entanglement on standard DWDM
//! wavelengths.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_photonics::comb::TelecomBand;
use qfc_photonics::units::Frequency;

use crate::qkd::{qber_from_visibility, secret_key_fraction};
use crate::source::QfcSource;
use crate::timebin::{channel_state_model, TimeBinConfig};

/// One user pair's allocation in the star network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserAllocation {
    /// User-pair label (Alice_k / Bob_k).
    pub user_pair: u32,
    /// Comb channel pair assigned.
    pub channel_m: u32,
    /// Wavelength delivered to the "Alice" side (signal).
    pub alice_frequency: Frequency,
    /// Wavelength delivered to the "Bob" side (idler).
    pub bob_frequency: Frequency,
    /// Telecom bands of the two wavelengths.
    pub bands: (TelecomBand, TelecomBand),
    /// Entangled-pair delivery rate (post-selected coincidences/s at the
    /// network operating point).
    pub pair_rate_hz: f64,
    /// Secret-key rate available to this user pair, bit/s.
    pub key_rate_hz: f64,
}

/// The full network allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StarNetwork {
    /// Per-user allocations.
    pub users: Vec<UserAllocation>,
}

impl StarNetwork {
    /// Number of simultaneously served user pairs.
    pub fn user_pairs(&self) -> usize {
        self.users.len()
    }

    /// Aggregate secret-key rate of the network, bit/s.
    pub fn total_key_rate_hz(&self) -> f64 {
        self.users.iter().map(|u| u.key_rate_hz).sum()
    }

    /// `true` when no two users share a wavelength.
    ///
    /// Frequencies are compared exactly via `f64::to_bits` — an `as i64`
    /// cast would truncate fractional Hz (collapsing distinct channels
    /// within 1 Hz) and saturate on non-finite values.
    pub fn wavelengths_disjoint(&self) -> bool {
        let mut freqs: Vec<u64> = self
            .users
            .iter()
            .flat_map(|u| {
                [
                    u.alice_frequency.hz().to_bits(),
                    u.bob_frequency.hz().to_bits(),
                ]
            })
            .collect();
        let n = freqs.len();
        freqs.sort_unstable();
        freqs.dedup();
        freqs.len() == n
    }
}

/// Plans a star network over the first `user_pairs` channel pairs of the
/// comb, at the §IV time-bin operating point.
///
/// # Panics
///
/// Panics if `user_pairs == 0` or the source is not in the double-pulse
/// regime.
pub fn plan_star_network(
    source: &QfcSource,
    config: &TimeBinConfig,
    user_pairs: u32,
    frame_rate_hz: f64,
) -> StarNetwork {
    assert!(user_pairs > 0, "need at least one user pair");
    let comb = source.comb(user_pairs);
    let mut users = Vec::with_capacity(cast::u32_to_usize(user_pairs));
    for m in 1..=user_pairs {
        let pair = comb
            .pair(m)
            .unwrap_or_else(|| unreachable!("comb was built with {user_pairs} channels")); // qfc-lint: allow(panic-reachability) — invariant: the comb was just built with exactly user_pairs channels
        let model = channel_state_model(source, config, m);
        // Phase-averaged post-selected coincidence probability per frame.
        let p_mean = model.mu * config.arm_efficiency.powi(2) / 16.0 + model.accidental_prob;
        let pair_rate = p_mean * frame_rate_hz;
        let qber = qber_from_visibility(model.state_visibility);
        let key_rate = 0.5 * pair_rate * secret_key_fraction(qber);
        users.push(UserAllocation {
            user_pair: m,
            channel_m: m,
            alice_frequency: pair.signal.frequency,
            bob_frequency: pair.idler.frequency,
            bands: (pair.signal.band, pair.idler.band),
            pair_rate_hz: pair_rate,
            key_rate_hz: key_rate,
        });
    }
    StarNetwork { users }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network(n: u32) -> StarNetwork {
        let source = QfcSource::paper_device_timebin();
        plan_star_network(&source, &TimeBinConfig::paper(), n, 10.0e6)
    }

    #[test]
    fn five_user_pairs_from_the_paper_comb() {
        let net = network(5);
        assert_eq!(net.user_pairs(), 5);
        assert!(net.wavelengths_disjoint());
        for u in &net.users {
            assert!(u.pair_rate_hz > 1.0, "user {}: {}", u.user_pair, u.pair_rate_hz);
            assert!(u.key_rate_hz > 0.0, "user {}: no key", u.user_pair);
            // Alice above the pump, Bob below.
            assert!(u.alice_frequency.hz() > u.bob_frequency.hz());
        }
    }

    #[test]
    fn aggregate_rate_scales_with_users() {
        let small = network(2);
        let large = network(5);
        assert!(large.total_key_rate_hz() > small.total_key_rate_hz());
    }

    #[test]
    fn wide_network_spans_bands() {
        let net = network(35);
        let bands: Vec<TelecomBand> = net
            .users
            .iter()
            .flat_map(|u| [u.bands.0, u.bands.1])
            .collect();
        assert!(bands.contains(&TelecomBand::S));
        assert!(bands.contains(&TelecomBand::C));
        assert!(bands.contains(&TelecomBand::L));
        assert!(net.wavelengths_disjoint());
    }

    #[test]
    fn near_degenerate_channels_stay_disjoint() {
        // Regression: two distinct frequencies 0.25 Hz apart used to
        // collapse to the same i64 under the `hz() as i64` comparison and
        // report a (false) collision.
        let mut net = network(2);
        let base = net.users[0].alice_frequency.hz();
        net.users[1].alice_frequency = Frequency::from_hz(base + 0.25);
        assert_ne!(
            net.users[0].alice_frequency.hz(),
            net.users[1].alice_frequency.hz()
        );
        assert!(net.wavelengths_disjoint());

        // Exact duplicates are still caught.
        net.users[1].alice_frequency = net.users[0].alice_frequency;
        assert!(!net.wavelengths_disjoint());
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_rejected() {
        let _ = network(0);
    }
}
