//! Precomputed categorical sampling tables for shot-based Monte Carlo.
//!
//! The per-shot hot loops of the workspace draw millions of categorical
//! variates from a *fixed* weight vector (detection outcomes, Bell-basis
//! projections, dark/jitter mixtures). [`rng::discrete`](crate::rng::discrete)
//! re-walks the weight vector on every draw — O(n) subtractions plus a
//! full validation sweep per shot. The tables here move all of that work
//! to construction time, once per experiment:
//!
//! * [`DiscreteSampler`] — a threshold ladder that is **bit-identical**
//!   to `rng::discrete` for every possible uniform draw: it consumes one
//!   `rng.gen::<f64>()` and returns exactly the index the sequential
//!   subtraction loop would have returned, so converted kernels keep the
//!   workspace's byte-identity contract. Draws are O(log n).
//! * [`AliasTable`] — a Walker/Vose alias table with O(1) draws. Its
//!   uniform-to-index map differs from `discrete` (it is statistically,
//!   not bitwise, equivalent), so it is for *new* code paths that carry
//!   no byte-identity obligation.

use crate::cast;
use rand::Rng;

/// Evaluates the running remainder of `rng::discrete`'s subtraction loop
/// after outcomes `0..=j`: `((u − w₀) − w₁) … − w_j`, in the exact
/// floating-point order the sequential loop uses.
#[inline]
fn remainder_after(weights: &[f64], u: f64) -> f64 {
    let mut acc = u;
    for &w in weights {
        acc -= w;
    }
    acc
}

/// A precomputed categorical sampler that reproduces
/// [`rng::discrete`](crate::rng::discrete) bit for bit.
///
/// `discrete(rng, w)` draws `u = rng.gen::<f64>() * total` and returns
/// the first index `j` whose running remainder `((u − w₀) − … − w_j)`
/// is `≤ 0` (falling through to the last index). Each remainder is a
/// monotone non-decreasing function of `u`, so outcome `j` is selected
/// exactly when `u ≤ t_j`, where `t_j` is the largest float with a
/// non-positive remainder. The constructor finds every `t_j` by binary
/// search over the (order-preserving) bit patterns of non-negative
/// floats; a draw is then one uniform plus a `partition_point` over the
/// ascending ladder — identical output, O(log n) instead of O(n), and
/// no re-validation per shot.
///
/// ```
/// use qfc_mathkit::rng::{discrete, rng_from_seed};
/// use qfc_mathkit::sampling::DiscreteSampler;
///
/// let w = [0.2, 0.0, 1.3, 0.5];
/// let table = DiscreteSampler::new(&w);
/// let mut a = rng_from_seed(9);
/// let mut b = rng_from_seed(9);
/// for _ in 0..1000 {
///     assert_eq!(table.sample(&mut a), discrete(&mut b, &w));
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteSampler {
    /// `thresholds[j]` = largest `u` for which the remainder after
    /// outcome `j` is `≤ 0`; ascending, one entry per non-final outcome.
    thresholds: Vec<f64>,
    /// The weight total, summed in `discrete`'s exact order.
    total: f64,
    /// Number of outcomes (`weights.len()`).
    outcomes: usize,
}

impl DiscreteSampler {
    /// Builds the table. Uses no RNG, so constructing it inside or
    /// outside a sharded kernel cannot perturb any random stream.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any is negative — the same
    /// contract (and messages) as [`rng::discrete`](crate::rng::discrete).
    pub fn new(weights: &[f64]) -> Self {
        let total: f64 = weights
            .iter()
            .inspect(|&&w| assert!(w >= 0.0, "discrete: negative weight"))
            .sum();
        assert!(total > 0.0, "discrete: all weights zero");
        // The final outcome needs no threshold: it is the fall-through.
        let mut thresholds = Vec::with_capacity(weights.len().saturating_sub(1));
        for j in 0..weights.len().saturating_sub(1) {
            let prefix = &weights[..=j];
            // Remainders are monotone in u, non-positive at u = 0 and
            // positive at u = ∞ (∞ − finite = ∞), so the non-negative
            // float bit patterns [0, ∞) are split in two; find the last
            // pattern on the non-positive side.
            let mut lo = 0u64;
            let mut hi = f64::INFINITY.to_bits();
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if remainder_after(prefix, f64::from_bits(mid)) <= 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            thresholds.push(f64::from_bits(lo));
        }
        Self {
            thresholds,
            total,
            outcomes: weights.len(),
        }
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.outcomes
    }

    /// `true` when there are no outcomes (unreachable via [`Self::new`],
    /// which rejects empty/all-zero weights).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.outcomes == 0
    }

    /// The weight total, summed in the same order as `discrete`.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Draws one outcome, consuming exactly one `rng.gen::<f64>()` —
    /// the same single draw `discrete` makes.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample_with_uniform(rng.gen::<f64>())
    }

    /// Maps an already-drawn uniform `u01 ∈ [0, 1)` to its outcome.
    #[inline]
    pub fn sample_with_uniform(&self, u01: f64) -> usize {
        let u = u01 * self.total;
        // u ≤ t_j  ⟺  remainder_j(u) ≤ 0  ⟺  discrete returns ≤ j;
        // past every threshold is the fall-through outcome. That final
        // outcome often carries the bulk of the mass (e.g. "no
        // coincidence" in the time-bin kernel), so answer it with one
        // predictable comparison before paying for the binary search —
        // `partition_point` would return `thresholds.len()` there anyway.
        match self.thresholds.last() {
            Some(&t_last) if t_last < u => self.outcomes - 1,
            _ => self.thresholds.partition_point(|&t| t < u),
        }
    }
}

/// A Walker/Vose alias table: O(1) categorical draws.
///
/// Statistically equivalent to [`rng::discrete`](crate::rng::discrete)
/// but **not** bitwise-compatible — it maps uniforms to outcomes through
/// a different partition of `[0, 1)`. Use it for new sampling paths; use
/// [`DiscreteSampler`] where the byte-identity contract applies.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Acceptance probability of each column's own index.
    prob: Vec<f64>,
    /// Fallback index of each column.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table with Vose's stack construction.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any is negative.
    pub fn new(weights: &[f64]) -> Self {
        let total: f64 = weights
            .iter()
            .inspect(|&&w| assert!(w >= 0.0, "alias: negative weight"))
            .sum();
        assert!(total > 0.0, "alias: all weights zero");
        let n = weights.len();
        let mut scaled: Vec<f64> = weights
            .iter()
            .map(|&w| w * cast::to_f64(n) / total)
            .collect();
        let mut prob = vec![0.0f64; n];
        let mut alias: Vec<usize> = (0..n).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers on either stack have weight ≈ 1.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` when there are no outcomes (unreachable via [`Self::new`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome from a single uniform: the integer part picks
    /// the column, the fractional part accepts it or takes its alias.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x = rng.gen::<f64>() * cast::to_f64(self.prob.len());
        let i = cast::f64_to_usize(x).min(self.prob.len() - 1);
        if x - cast::to_f64(i) < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{discrete, rng_from_seed};
    use proptest::prelude::*;

    /// Reference: discrete's subtraction loop applied to a known uniform.
    fn discrete_with_uniform(weights: &[f64], u01: f64) -> usize {
        let total: f64 = weights.iter().sum();
        let mut u = u01 * total;
        for (i, &w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    #[test]
    fn matches_discrete_on_shared_stream() {
        let cases: &[&[f64]] = &[
            &[1.0],
            &[0.5, 0.5],
            &[1.0, 0.0, 3.0],
            &[0.0, 2.0],
            &[1e-12, 1.0, 1e-12, 0.25],
            &[0.3; 10],
        ];
        for &w in cases {
            let table = DiscreteSampler::new(w);
            let mut a = rng_from_seed(42);
            let mut b = rng_from_seed(42);
            for _ in 0..20_000 {
                assert_eq!(table.sample(&mut a), discrete(&mut b, w), "weights {w:?}");
            }
        }
    }

    #[test]
    fn matches_discrete_at_exact_thresholds() {
        let w = [0.25, 0.5, 0.125, 0.125];
        let table = DiscreteSampler::new(&w);
        // Probe each threshold, its neighbours, and the extremes.
        let mut probes = vec![0.0, f64::MIN_POSITIVE, 0.5, 1.0 - f64::EPSILON];
        for j in 0..w.len() - 1 {
            let t = table.thresholds[j] / table.total();
            for u in [
                t,
                f64::from_bits(t.to_bits().saturating_sub(1)),
                f64::from_bits(t.to_bits() + 1),
            ] {
                probes.push(u.clamp(0.0, 1.0 - f64::EPSILON));
            }
        }
        for u in probes {
            assert_eq!(
                table.sample_with_uniform(u),
                discrete_with_uniform(&w, u),
                "u = {u:e}"
            );
        }
    }

    #[test]
    fn thresholds_are_ascending() {
        let table = DiscreteSampler::new(&[0.1, 0.0, 0.4, 0.0, 0.5]);
        assert!(table.thresholds.windows(2).all(|p| p[0] <= p[1]));
        assert_eq!(table.len(), 5);
        assert!(!table.is_empty());
    }

    #[test]
    #[should_panic(expected = "all weights zero")]
    fn rejects_zero_weights_like_discrete() {
        let _ = DiscreteSampler::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn rejects_negative_weights_like_discrete() {
        let _ = DiscreteSampler::new(&[0.5, -0.1]);
    }

    #[test]
    fn alias_table_respects_weights() {
        let w = [1.0, 0.0, 3.0, 4.0];
        let table = AliasTable::new(&w);
        let mut rng = rng_from_seed(7);
        let n = 400_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        for (i, &c) in counts.iter().enumerate() {
            let expect = w[i] / 8.0;
            let got = c as f64 / n as f64;
            assert!((got - expect).abs() < 0.005, "outcome {i}: {got} vs {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "all weights zero")]
    fn alias_rejects_zero_weights() {
        let _ = AliasTable::new(&[0.0]);
    }

    proptest! {
        /// The ladder agrees with the subtraction loop for arbitrary
        /// weight vectors and arbitrary uniforms — including u values
        /// engineered to land on bin edges.
        #[test]
        fn sampler_equals_discrete_everywhere(
            weights in prop::collection::vec(0.0f64..1e3, 1..12),
            u01 in 0.0f64..1.0,
        ) {
            prop_assume!(weights.iter().sum::<f64>() > 0.0);
            let table = DiscreteSampler::new(&weights);
            prop_assert_eq!(
                table.sample_with_uniform(u01),
                discrete_with_uniform(&weights, u01)
            );
        }

        /// Alias-table frequencies converge to the normalized weights
        /// (statistical correctness, not bitwise equivalence).
        #[test]
        fn alias_frequencies_match_weights(
            weights in prop::collection::vec(0.0f64..10.0, 2..6),
            seed in 0u64..1000,
        ) {
            let total: f64 = weights.iter().sum();
            prop_assume!(total > 1e-6);
            let table = AliasTable::new(&weights);
            let mut rng = rng_from_seed(seed);
            let n = 60_000usize;
            let mut counts = vec![0u64; weights.len()];
            for _ in 0..n {
                counts[table.sample(&mut rng)] += 1;
            }
            for (i, &c) in counts.iter().enumerate() {
                let p = weights[i] / total;
                let got = c as f64 / n as f64;
                // 5σ binomial tolerance (plus an absolute floor).
                let tol = 5.0 * (p * (1.0 - p) / n as f64).sqrt() + 2e-3;
                prop_assert!((got - p).abs() < tol, "outcome {}: {} vs {}", i, got, p);
            }
        }
    }
}
