//@ crate: qfc-core
pub fn bad() -> Result<u8, String> { //~ ERROR error-taxonomy
    Ok(1)
}

pub fn bad_io() -> std::io::Result<u8> { //~ ERROR error-taxonomy
    Ok(1)
}

pub fn good() -> QfcResult<u8> {
    Ok(2)
}

pub fn also_good() -> Result<u8, QfcError> {
    Ok(3)
}

pub(crate) fn internal_is_unscoped() -> Result<u8, String> {
    Ok(4)
}

fn private_is_unscoped() -> Result<u8, String> {
    Ok(5)
}

pub fn infallible(x: u8) -> u8 {
    x
}
