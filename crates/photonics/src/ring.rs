//! High-Q add-drop microring resonator — the heart of the quantum
//! frequency comb.
//!
//! The model is the standard analytic add-drop ring with two identical
//! point couplers: free spectral range set by the round-trip group delay,
//! Lorentzian resonances of loaded linewidth `δν = FSR/finesse`, intracavity
//! field enhancement on resonance, and a dispersion-shifted mode grid
//! `ν_m = ν₀ + m·FSR + ½·m²·dFSR/dm` for each polarization family. The TE
//! and TM families can be offset against each other — the §III design knob
//! that suppresses stimulated FWM while keeping spontaneous type-II FWM
//! energy-conserving.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_faults::{QfcError, QfcResult};
use qfc_mathkit::complex::Complex64;

use crate::constants::SPEED_OF_LIGHT;
use crate::units::{Frequency, Wavelength};
use crate::waveguide::{Polarization, Waveguide};

/// An add-drop microring resonator with symmetric couplers.
///
/// Construct via [`MicroringBuilder`] or the calibrated
/// [`Microring::paper_device`].
///
/// # Examples
///
/// ```
/// use qfc_photonics::ring::Microring;
/// let ring = Microring::paper_device();
/// assert!((ring.fsr(qfc_photonics::waveguide::Polarization::Te).ghz() - 200.0).abs() < 1.0);
/// assert!((ring.linewidth().mhz() - 110.0).abs() < 15.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Microring {
    waveguide: Waveguide,
    radius: f64,
    self_coupling: f64,
    anchor_te: Frequency,
    te_tm_offset: Frequency,
}

/// Builder for [`Microring`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct MicroringBuilder {
    waveguide: Waveguide,
    radius: f64,
    self_coupling: f64,
    anchor_te: Frequency,
    te_tm_offset: Frequency,
}

impl MicroringBuilder {
    /// Starts a builder from a waveguide cross-section.
    pub fn new(waveguide: Waveguide) -> Self {
        Self {
            waveguide,
            radius: 140e-6,
            self_coupling: 0.9995,
            anchor_te: Frequency::from_thz(193.4),
            te_tm_offset: Frequency::from_ghz(0.0),
        }
    }

    /// Sets the ring radius in meters.
    pub fn radius(&mut self, radius: f64) -> &mut Self {
        self.radius = radius;
        self
    }

    /// Sets the ring radius so that the TE free spectral range equals
    /// `fsr` at the anchor wavelength.
    pub fn radius_for_fsr(&mut self, fsr: Frequency) -> &mut Self {
        let ng = self
            .waveguide
            .group_index(self.anchor_te.wavelength(), Polarization::Te);
        let circumference = SPEED_OF_LIGHT / (ng * fsr.hz());
        self.radius = circumference / (2.0 * std::f64::consts::PI);
        self
    }

    /// Fallible form of [`Self::self_coupling`]: rejects `r` outside
    /// `(0, 1)` with [`QfcError::InvalidParameter`] instead of panicking.
    pub fn try_self_coupling(&mut self, r: f64) -> QfcResult<&mut Self> {
        if !(r > 0.0 && r < 1.0) {
            return Err(QfcError::invalid("self-coupling must be in (0, 1)"));
        }
        self.self_coupling = r;
        Ok(self)
    }

    /// Sets the amplitude self-coupling coefficient `r` of both couplers
    /// (`t² = 1 − r²` is the power cross-coupling).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < r < 1`.
    pub fn self_coupling(&mut self, r: f64) -> &mut Self {
        match self.try_self_coupling(r) {
            Ok(b) => b,
            Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
        }
    }

    /// Chooses the coupler so the loaded linewidth equals `target` at the
    /// anchor (solves `finesse = FSR/δν` for `r`).
    pub fn coupling_for_linewidth(&mut self, target: Frequency) -> &mut Self {
        let probe = self.clone().build();
        let fsr = probe.fsr(Polarization::Te);
        let finesse = fsr.hz() / target.hz();
        let a = probe.round_trip_amplitude();
        // finesse = π·r·√a / (1 − r²·a); solve the quadratic in r.
        // r²·a·F + π·√a·r − F = 0  (using F = finesse)
        let qa = a * finesse;
        let qb = std::f64::consts::PI * a.sqrt();
        let qc = -finesse;
        let r = (-qb + (qb * qb - 4.0 * qa * qc).sqrt()) / (2.0 * qa);
        self.self_coupling = r.clamp(1e-6, 1.0 - 1e-12);
        self
    }

    /// Anchors the TE mode `m = 0` at the given frequency (the pump
    /// resonance).
    pub fn anchor(&mut self, f: Frequency) -> &mut Self {
        self.anchor_te = f;
        self
    }

    /// Offsets the TM mode family relative to TE (the §III design knob).
    pub fn te_tm_offset(&mut self, offset: Frequency) -> &mut Self {
        self.te_tm_offset = offset;
        self
    }

    /// Fallible form of [`Self::build`]: validates the accumulated
    /// geometry instead of trusting it.
    pub fn try_build(&self) -> QfcResult<Microring> {
        if !(self.radius.is_finite() && self.radius > 0.0) {
            return Err(QfcError::invalid(format!(
                "ring radius must be positive and finite, got {}",
                self.radius
            )));
        }
        if !(self.self_coupling > 0.0 && self.self_coupling < 1.0) {
            return Err(QfcError::invalid("self-coupling must be in (0, 1)"));
        }
        if !(self.anchor_te.hz().is_finite() && self.anchor_te.hz() > 0.0) {
            return Err(QfcError::invalid(
                "anchor frequency must be positive and finite",
            ));
        }
        Ok(Microring {
            waveguide: self.waveguide,
            radius: self.radius,
            self_coupling: self.self_coupling,
            anchor_te: self.anchor_te,
            te_tm_offset: self.te_tm_offset,
        })
    }

    /// Builds the ring.
    ///
    /// # Panics
    ///
    /// Panics if the accumulated geometry is invalid (see
    /// [`Self::try_build`]).
    pub fn build(&self) -> Microring {
        match self.try_build() {
            Ok(r) => r,
            Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
        }
    }
}

impl Microring {
    /// The paper's device: Hydex ring with 200-GHz FSR, loaded linewidth
    /// 110 MHz (loaded Q ≈ 1.8 × 10⁶) anchored at 193.4 THz, with a
    /// half-linewidth-scale TE/TM offset available for §III.
    pub fn paper_device() -> Self {
        let mut b = MicroringBuilder::new(Waveguide::hydex_paper());
        b.anchor(Frequency::from_thz(193.4))
            .radius_for_fsr(Frequency::from_ghz(200.0))
            .te_tm_offset(Frequency::from_ghz(0.0));
        b.coupling_for_linewidth(Frequency::from_hz(110e6));
        b.build()
    }

    /// The underlying waveguide.
    pub fn waveguide(&self) -> &Waveguide {
        &self.waveguide
    }

    /// Ring radius, m.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Ring circumference, m.
    pub fn circumference(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.radius
    }

    /// Amplitude self-coupling coefficient of each coupler.
    pub fn self_coupling(&self) -> f64 {
        self.self_coupling
    }

    /// Power cross-coupling `t² = 1 − r²` of each coupler.
    pub fn cross_coupling_power(&self) -> f64 {
        1.0 - self.self_coupling * self.self_coupling
    }

    /// Single-round-trip amplitude transmission `a = e^{−αL/2}`.
    pub fn round_trip_amplitude(&self) -> f64 {
        (-0.5 * self.waveguide.material.alpha_per_m() * self.circumference()).exp()
    }

    /// Free spectral range for a polarization family.
    pub fn fsr(&self, pol: Polarization) -> Frequency {
        let ng = self
            .waveguide
            .group_index(self.anchor_te.wavelength(), pol);
        Frequency::from_hz(SPEED_OF_LIGHT / (ng * self.circumference()))
    }

    /// Finesse `π·r·√a / (1 − r²·a)` of the loaded resonator.
    pub fn finesse(&self) -> f64 {
        let r = self.self_coupling;
        let a = self.round_trip_amplitude();
        std::f64::consts::PI * r * a.sqrt() / (1.0 - r * r * a)
    }

    /// Loaded linewidth (FWHM) `δν = FSR/finesse`.
    pub fn linewidth(&self) -> Frequency {
        Frequency::from_hz(self.fsr(Polarization::Te).hz() / self.finesse())
    }

    /// Loaded quality factor `Q = ν₀/δν`.
    pub fn q_loaded(&self) -> f64 {
        self.anchor_te.hz() / self.linewidth().hz()
    }

    /// On-resonance intracavity power enhancement
    /// `FE² = t² / (1 − r²·a)²`.
    pub fn field_enhancement_power(&self) -> f64 {
        let r = self.self_coupling;
        let a = self.round_trip_amplitude();
        self.cross_coupling_power() / (1.0 - r * r * a).powi(2)
    }

    /// On-resonance drop-port power transmission `t⁴·a / (1 − r²·a)²`.
    pub fn drop_transmission_peak(&self) -> f64 {
        let r = self.self_coupling;
        let a = self.round_trip_amplitude();
        self.cross_coupling_power().powi(2) * a / (1.0 - r * r * a).powi(2)
    }

    /// Resonance frequency of mode `m` (relative to the pump mode `m = 0`)
    /// for a polarization family, including second-order dispersion of the
    /// mode grid.
    pub fn resonance(&self, pol: Polarization, m: i32) -> Frequency {
        let fsr = self.fsr(pol).hz();
        // dFSR/dm = −2π·β₂·L·FSR³  (positive for anomalous β₂ < 0).
        let d2 = -2.0 * std::f64::consts::PI
            * self.waveguide.gvd(pol)
            * self.circumference()
            * fsr.powi(3);
        let base = match pol {
            Polarization::Te => self.anchor_te.hz(),
            Polarization::Tm => self.anchor_te.hz() + self.te_tm_offset.hz(),
        };
        Frequency::from_hz(base + cast::to_f64(m) * fsr + 0.5 * (cast::to_f64(m)).powi(2) * d2)
    }

    /// Second-order dispersion of the mode grid `dFSR/dm`, Hz per mode.
    pub fn grid_dispersion(&self, pol: Polarization) -> Frequency {
        let fsr = self.fsr(pol).hz();
        Frequency::from_hz(
            -2.0 * std::f64::consts::PI
                * self.waveguide.gvd(pol)
                * self.circumference()
                * fsr.powi(3),
        )
    }

    /// Normalized complex Lorentzian field response of mode `m`:
    /// `ℓ(ν) = (δν/2) / (δν/2 + i(ν − ν_m))`, unity on resonance.
    pub fn field_response(&self, pol: Polarization, m: i32, freq: Frequency) -> Complex64 {
        let half = 0.5 * self.linewidth().hz();
        let det = freq.hz() - self.resonance(pol, m).hz();
        Complex64::real(half) / Complex64::new(half, det)
    }

    /// Normalized Lorentzian power response of mode `m` (unity at peak).
    pub fn power_response(&self, pol: Polarization, m: i32, freq: Frequency) -> f64 {
        self.field_response(pol, m, freq).norm_sqr()
    }

    /// Index of the resonance nearest to `freq` and its detuning.
    pub fn nearest_resonance(&self, pol: Polarization, freq: Frequency) -> (i32, Frequency) {
        let fsr = self.fsr(pol).hz();
        let base = self.resonance(pol, 0).hz();
        let mut m = cast::f64_to_i32(((freq.hz() - base) / fsr).round());
        // The quadratic grid term can shift the nearest mode by one.
        let mut best = (m, (freq - self.resonance(pol, m)).abs());
        for cand in [m - 1, m + 1] {
            let d = (freq - self.resonance(pol, cand)).abs();
            if d < best.1 {
                best = (cand, d);
            }
        }
        m = best.0;
        (m, freq - self.resonance(pol, m))
    }

    /// Photon (intensity) decay time of the loaded cavity,
    /// `τ = 1/(2π·δν)` — the time constant of the two-sided exponential
    /// coincidence histogram of §II.
    pub fn coincidence_decay_time(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * self.linewidth().hz())
    }

    /// Vacuum wavelength of mode `m` of a polarization family.
    pub fn resonance_wavelength(&self, pol: Polarization, m: i32) -> Wavelength {
        self.resonance(pol, m).wavelength()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Microring {
        Microring::paper_device()
    }

    #[test]
    fn paper_device_fsr_near_200ghz() {
        let fsr = ring().fsr(Polarization::Te);
        assert!((fsr.ghz() - 200.0).abs() < 0.5, "FSR = {fsr}");
    }

    #[test]
    fn paper_device_linewidth_110mhz() {
        let lw = ring().linewidth();
        assert!((lw.mhz() - 110.0).abs() < 5.0, "δν = {lw}");
    }

    #[test]
    fn loaded_q_above_a_million() {
        let q = ring().q_loaded();
        assert!(q > 1.0e6 && q < 3.0e6, "Q = {q}");
    }

    #[test]
    fn finesse_consistent_with_linewidth() {
        let r = ring();
        let f = r.finesse();
        assert!((f - r.fsr(Polarization::Te).hz() / r.linewidth().hz()).abs() < 1e-6);
        assert!(f > 1000.0, "finesse = {f}");
    }

    #[test]
    fn field_enhancement_large() {
        let fe = ring().field_enhancement_power();
        assert!(fe > 100.0 && fe < 2000.0, "FE² = {fe}");
    }

    #[test]
    fn drop_transmission_bounded() {
        let t = ring().drop_transmission_peak();
        assert!(t > 0.0 && t <= 1.0, "T_drop = {t}");
    }

    #[test]
    fn resonances_are_evenly_spaced_to_first_order() {
        let r = ring();
        let f0 = r.resonance(Polarization::Te, 0);
        let f1 = r.resonance(Polarization::Te, 1);
        let fm1 = r.resonance(Polarization::Te, -1);
        let fsr = r.fsr(Polarization::Te);
        assert!(((f1 - f0).hz() - fsr.hz()).abs() < 1e6);
        assert!(((f0 - fm1).hz() - fsr.hz()).abs() < 1e6);
    }

    #[test]
    fn grid_dispersion_positive_for_anomalous() {
        // β₂ < 0 (anomalous) ⇒ FSR grows with mode number.
        assert!(ring().grid_dispersion(Polarization::Te).hz() > 0.0);
    }

    #[test]
    fn grid_dispersion_stays_within_linewidth_over_comb() {
        // The comb is usable while the quadratic walk-off stays below the
        // linewidth; check it's small for the inner ±5 channels of §IV.
        let r = ring();
        let d2 = r.grid_dispersion(Polarization::Te).hz();
        let walk = 0.5 * 25.0 * d2; // m = 5
        assert!(walk < r.linewidth().hz(), "walk-off {walk}");
    }

    #[test]
    fn field_response_unity_on_resonance() {
        let r = ring();
        let f = r.resonance(Polarization::Te, 3);
        let resp = r.field_response(Polarization::Te, 3, f);
        assert!((resp.abs() - 1.0).abs() < 1e-12);
        // Half power at half linewidth detuning.
        let det = Frequency::from_hz(f.hz() + 0.5 * r.linewidth().hz());
        assert!((r.power_response(Polarization::Te, 3, det) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn nearest_resonance_roundtrip() {
        let r = ring();
        for m in [-10, -1, 0, 7] {
            let f = r.resonance(Polarization::Te, m);
            let (found, det) = r.nearest_resonance(Polarization::Te, f);
            assert_eq!(found, m);
            assert!(det.hz().abs() < 1.0);
        }
    }

    #[test]
    fn tm_offset_shifts_only_tm() {
        let mut b = MicroringBuilder::new(Waveguide::hydex_paper());
        b.radius_for_fsr(Frequency::from_ghz(200.0))
            .te_tm_offset(Frequency::from_ghz(1.5));
        let r = b.build();
        let te0 = r.resonance(Polarization::Te, 0);
        let tm0 = r.resonance(Polarization::Tm, 0);
        assert!(((tm0 - te0).ghz() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn te_tm_fsr_differ_slightly() {
        let r = ring();
        let dte = r.fsr(Polarization::Te).hz();
        let dtm = r.fsr(Polarization::Tm).hz();
        // Birefringence makes them differ, but only at the <1 % level —
        // the §III "similar free spectral ranges" requirement.
        let rel = (dte - dtm).abs() / dte;
        assert!(rel > 0.0 && rel < 0.01, "rel = {rel}");
    }

    #[test]
    fn coincidence_decay_time_matches_linewidth() {
        let r = ring();
        let tau = r.coincidence_decay_time();
        let expect = 1.0 / (2.0 * std::f64::consts::PI * r.linewidth().hz());
        assert!((tau - expect).abs() < 1e-18);
        // ≈ 1.45 ns for 110 MHz.
        assert!(tau > 1.2e-9 && tau < 1.7e-9, "τ = {tau}");
    }

    #[test]
    fn builder_linewidth_targeting() {
        let mut b = MicroringBuilder::new(Waveguide::hydex_paper());
        b.radius_for_fsr(Frequency::from_ghz(200.0));
        for target_mhz in [50.0, 110.0, 300.0] {
            b.coupling_for_linewidth(Frequency::from_hz(target_mhz * 1e6));
            let got = b.build().linewidth().mhz();
            assert!(
                (got - target_mhz).abs() / target_mhz < 0.05,
                "target {target_mhz} got {got}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "self-coupling")]
    fn builder_rejects_bad_coupling() {
        MicroringBuilder::new(Waveguide::hydex_paper()).self_coupling(1.5);
    }

    #[test]
    fn try_self_coupling_reports_invalid_parameter() {
        let mut b = MicroringBuilder::new(Waveguide::hydex_paper());
        let err = b.try_self_coupling(1.5).unwrap_err();
        assert!(matches!(err, QfcError::InvalidParameter { .. }));
        assert!(err.to_string().contains("self-coupling"));
        assert!(b.try_self_coupling(f64::NAN).is_err());
        assert!(b.try_self_coupling(0.5).is_ok());
    }

    #[test]
    fn try_build_rejects_bad_radius() {
        let mut b = MicroringBuilder::new(Waveguide::hydex_paper());
        b.radius(-1.0);
        let err = b.try_build().unwrap_err();
        assert!(err.to_string().contains("radius"));
        b.radius(140e-6);
        assert!(b.try_build().is_ok());
    }

    #[test]
    fn resonance_wavelengths_in_telecom_bands() {
        let r = ring();
        let lam = r.resonance_wavelength(Polarization::Te, 0);
        assert!(lam.nm() > 1540.0 && lam.nm() < 1560.0);
    }
}
