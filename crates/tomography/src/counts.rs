//! Simulated tomography counts: Monte-Carlo projective measurements of a
//! density matrix under a set of tomography settings.

use qfc_faults::{QfcError, QfcResult};
use qfc_mathkit::cast;
use rand::Rng;
use serde::{Deserialize, Serialize};

use qfc_mathkit::sampling::DiscreteSampler;
use qfc_quantum::density::DensityMatrix;

use crate::settings::Setting;

/// Measured (or simulated) counts for a full tomography run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TomographyData {
    /// The settings, one per measured basis combination.
    pub settings: Vec<Setting>,
    /// `counts[s][o]` — events for outcome `o` of setting `s`.
    pub counts: Vec<Vec<u64>>,
}

impl TomographyData {
    /// Total events in one setting.
    pub fn setting_total(&self, s: usize) -> u64 {
        self.counts[s].iter().sum()
    }

    /// Total events across all settings.
    pub fn grand_total(&self) -> u64 {
        (0..self.settings.len()).map(|s| self.setting_total(s)).sum()
    }

    /// Number of qubits measured.
    ///
    /// # Panics
    ///
    /// Panics on an empty setting list.
    pub fn qubits(&self) -> usize {
        match self.try_qubits() {
            Ok(n) => n,
            Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
        }
    }

    /// Fallible form of [`TomographyData::qubits`]: returns
    /// [`QfcError::InsufficientData`] on an empty setting list instead of
    /// panicking.
    pub fn try_qubits(&self) -> QfcResult<usize> {
        self.settings
            .first()
            .map(Setting::qubits)
            .ok_or_else(|| QfcError::InsufficientData {
                context: "tomography data has an empty setting list".to_owned(),
            })
    }

    /// Structural validation every reconstructor runs up front:
    ///
    /// * the setting list is non-empty;
    /// * every setting measures the same number of qubits (a mixed-arity
    ///   list would silently truncate Pauli-string compatibility checks);
    /// * the count table has one row per setting, each row one slot per
    ///   outcome.
    ///
    /// # Errors
    ///
    /// [`QfcError::InsufficientData`] for an empty or mixed-arity setting
    /// list, [`QfcError::InvalidParameter`] for a malformed count table.
    pub fn validate(&self) -> QfcResult<()> {
        let n = self.try_qubits()?;
        for (s, setting) in self.settings.iter().enumerate() {
            if setting.qubits() != n {
                return Err(QfcError::InsufficientData {
                    context: format!(
                        "mixed-arity setting list: setting {s} measures {} qubit(s) \
                         but setting 0 measures {n}",
                        setting.qubits()
                    ),
                });
            }
        }
        if self.counts.len() != self.settings.len() {
            return Err(QfcError::invalid(format!(
                "tomography count table has {} row(s) for {} setting(s)",
                self.counts.len(),
                self.settings.len()
            )));
        }
        for (s, row) in self.counts.iter().enumerate() {
            if row.len() != self.settings[s].outcomes() {
                return Err(QfcError::invalid(format!(
                    "setting {s} has {} count slot(s) for {} outcome(s)",
                    row.len(),
                    self.settings[s].outcomes()
                )));
            }
        }
        Ok(())
    }

    /// Relative frequency of outcome `o` in setting `s` (`0` when the
    /// setting recorded no events).
    pub fn frequency(&self, s: usize, o: usize) -> f64 {
        let total = self.setting_total(s);
        if total == 0 {
            0.0
        } else {
            cast::to_f64(self.counts[s][o]) / cast::to_f64(total)
        }
    }
}

/// Simulates `shots_per_setting` projective measurements of `rho` in each
/// setting.
///
/// # Panics
///
/// Panics if settings don't match the state dimension.
pub fn simulate_counts<R: Rng + ?Sized>(
    rng: &mut R,
    rho: &DensityMatrix,
    settings: &[Setting],
    shots_per_setting: u64,
) -> TomographyData {
    let mut counts = Vec::with_capacity(settings.len());
    for setting in settings {
        assert_eq!(
            setting.qubits(),
            rho.qubits(),
            "setting does not match state size"
        );
        let probs: Vec<f64> = (0..setting.outcomes())
            .map(|o| rho.probability(&setting.outcome_projector(o)))
            .collect();
        let sampler = DiscreteSampler::new(&probs);
        let mut c = vec![0u64; setting.outcomes()];
        // qfc-lint: hot
        for _ in 0..shots_per_setting {
            c[sampler.sample(rng)] += 1;
        }
        counts.push(c);
    }
    TomographyData {
        settings: settings.to_vec(),
        counts,
    }
}

/// One setting's outcome histogram: `shots` projective measurements of
/// `rho` drawn from the dedicated RNG stream `stream_seed`.
///
/// This is the per-shard kernel of the seeded count paths:
/// [`simulate_counts_seeded`] (and the streaming accumulator in
/// [`crate::stream`]) give setting `s` the stream
/// `split_seed(seed, s)`, so any shard that runs this kernel with the
/// same stream seed reproduces that setting's histogram bit for bit,
/// regardless of which process or thread executes it.
///
/// # Panics
///
/// Panics if the setting doesn't match the state dimension.
pub fn setting_histogram(
    rho: &DensityMatrix,
    setting: &Setting,
    shots: u64,
    stream_seed: u64,
) -> Vec<u64> {
    use qfc_mathkit::rng::rng_from_seed;

    assert_eq!(
        setting.qubits(),
        rho.qubits(),
        "setting does not match state size"
    );
    let probs: Vec<f64> = (0..setting.outcomes())
        .map(|o| rho.probability(&setting.outcome_projector(o)))
        .collect();
    let sampler = DiscreteSampler::new(&probs);
    let mut rng = rng_from_seed(stream_seed);
    let mut c = vec![0u64; setting.outcomes()];
    // qfc-lint: hot
    for _ in 0..shots {
        c[sampler.sample(&mut rng)] += 1;
    }
    c
}

/// Minimum shots per setting before the seeded count paths fan out to
/// the worker pool. Below this grain the per-task dispatch and shard
/// merge cost more than the sampling itself — the four-photon smoke
/// profile (40 shots × 81 settings) measured *slower* in parallel than
/// serial — so small jobs run the identical per-setting kernels
/// serially instead. Outputs are unaffected: each setting's histogram
/// depends only on its own split seed, never on which thread ran it.
pub(crate) const PAR_MIN_SHOTS_PER_SETTING: u64 = 1024;

/// Seeded, parallel variant of [`simulate_counts`]: every setting draws
/// its shots from an independent split-seed stream
/// (`split_seed(seed, setting_index)`), so settings run concurrently on
/// the worker pool and the counts are bitwise-identical at any thread
/// count. Jobs below [`PAR_MIN_SHOTS_PER_SETTING`] shots per setting
/// skip the pool and run the same kernels serially (same bytes, no
/// dispatch overhead).
///
/// # Panics
///
/// Panics if settings don't match the state dimension.
pub fn simulate_counts_seeded(
    rho: &DensityMatrix,
    settings: &[Setting],
    shots_per_setting: u64,
    seed: u64,
) -> TomographyData {
    use qfc_mathkit::rng::split_seed;

    let indexed: Vec<usize> = (0..settings.len()).collect();
    let histogram = |s: usize| {
        setting_histogram(
            rho,
            &settings[s],
            shots_per_setting,
            split_seed(seed, cast::usize_to_u64(s)),
        )
    };
    let counts = if shots_per_setting < PAR_MIN_SHOTS_PER_SETTING {
        indexed.iter().map(|&s| histogram(s)).collect()
    } else {
        qfc_runtime::par_map(&indexed, |&s| histogram(s))
    };
    TomographyData {
        settings: settings.to_vec(),
        counts,
    }
}

/// Computes the *exact* outcome distribution instead of sampling —
/// "infinite statistics" tomography used to validate reconstructors.
pub fn exact_counts(rho: &DensityMatrix, settings: &[Setting], scale: u64) -> TomographyData {
    let mut counts = Vec::with_capacity(settings.len());
    for setting in settings {
        assert_eq!(setting.qubits(), rho.qubits());
        let c: Vec<u64> = (0..setting.outcomes())
            .map(|o| {
                cast::f64_to_u64((rho.probability(&setting.outcome_projector(o)) * cast::to_f64(scale)).round())
            })
            .collect();
        counts.push(c);
    }
    TomographyData {
        settings: settings.to_vec(),
        counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::{all_settings, PauliBasis};
    use qfc_mathkit::rng::rng_from_seed;
    use qfc_quantum::bell::bell_phi_plus;
    use qfc_quantum::state::PureState;

    #[test]
    fn counts_respect_born_rule() {
        let mut rng = rng_from_seed(21);
        let rho = DensityMatrix::from_pure(&PureState::plus());
        let settings = vec![Setting(vec![PauliBasis::X]), Setting(vec![PauliBasis::Z])];
        let data = simulate_counts(&mut rng, &rho, &settings, 20_000);
        // X basis: |+⟩ always gives outcome 0.
        assert_eq!(data.counts[0][0], 20_000);
        // Z basis: 50/50.
        let f = data.frequency(1, 0);
        assert!((f - 0.5).abs() < 0.02, "f = {f}");
    }

    #[test]
    fn bell_state_correlations_in_counts() {
        let mut rng = rng_from_seed(22);
        let rho = DensityMatrix::from_pure(&bell_phi_plus());
        let zz = Setting(vec![PauliBasis::Z, PauliBasis::Z]);
        let data = simulate_counts(&mut rng, &rho, &[zz], 10_000);
        // Only 00 and 11 outcomes.
        assert_eq!(data.counts[0][1], 0);
        assert_eq!(data.counts[0][2], 0);
        assert!(data.counts[0][0] + data.counts[0][3] == 10_000);
    }

    #[test]
    fn exact_counts_match_probabilities() {
        let rho = DensityMatrix::from_pure(&bell_phi_plus());
        let settings = all_settings(2);
        let data = exact_counts(&rho, &settings, 1_000_000);
        // XX on |Φ⁺⟩: perfectly correlated (outcomes 00 and 11 only).
        let xx_index = 0; // lexicographic X<Y<Z → (X,X) first
        assert_eq!(data.settings[xx_index].0, vec![PauliBasis::X, PauliBasis::X]);
        assert_eq!(data.counts[xx_index][1], 0);
        assert_eq!(data.counts[xx_index][2], 0);
        assert!((data.frequency(xx_index, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn totals_add_up() {
        let mut rng = rng_from_seed(23);
        let rho = DensityMatrix::maximally_mixed(2);
        let settings = all_settings(2);
        let data = simulate_counts(&mut rng, &rho, &settings, 100);
        assert_eq!(data.grand_total(), 900);
        assert_eq!(data.qubits(), 2);
        for s in 0..settings.len() {
            assert_eq!(data.setting_total(s), 100);
        }
    }
}
