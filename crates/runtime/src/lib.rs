//! Deterministic parallel execution engine for shot-based simulations.
//!
//! Every Monte-Carlo hot loop in the workspace runs through this crate's
//! three entry points — [`par_map`], [`par_chunks`] and [`par_shots`] —
//! which share one invariant: **results are bitwise-identical regardless
//! of how many worker threads execute them.**
//!
//! The invariant holds by construction:
//!
//! 1. Work is decomposed into a fixed set of tasks (or, for
//!    [`par_shots`], a fixed shard layout derived only from the shot
//!    count) that never depends on the thread count.
//! 2. Each task derives its randomness from a counter-based split seed
//!    ([`qfc_mathkit::rng::split_seed`]), never from shared mutable RNG
//!    state.
//! 3. Results are merged in task-index order, whatever order the workers
//!    finished in.
//!
//! Threads come from a scoped pool built on `std::thread::scope` — no
//! external dependencies. The pool size defaults to
//! `std::thread::available_parallelism()`, can be pinned process-wide
//! with the `QFC_THREADS` environment variable, and can be pinned
//! per-closure (and race-free, for tests) with [`with_threads`]. A pool
//! size of 1 short-circuits to a plain serial loop with no thread or
//! synchronization overhead. Nested parallel calls inside a worker run
//! serially rather than oversubscribing the machine.

#![forbid(unsafe_code)]

use qfc_mathkit::cast;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use qfc_mathkit::rng::split_seed;

/// Fixed shard count for [`par_shots`] decompositions.
///
/// Deliberately independent of the machine's thread count so the shard
/// layout — and therefore every derived seed — is reproducible anywhere.
/// 32 shards keep all realistic pools busy while amortizing per-shard
/// overhead.
pub const SHOT_SHARDS: u64 = 32;

thread_local! {
    /// Per-thread pool-size override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside pool workers so nested parallel calls run serially.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Why a `QFC_THREADS` value was rejected.
///
/// Crate-local by design: `qfc-runtime` sits below `qfc-faults` in the
/// dependency graph, so it cannot name `QfcError`; binaries surface this
/// through their own error path (or let it convert at the faults
/// boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadsEnvError {
    /// `QFC_THREADS=0` — a zero-thread pool cannot make progress.
    Zero,
    /// The value is not a decimal unsigned integer.
    NotANumber(String),
    /// The value overflows `usize`.
    Overflow(String),
}

impl std::fmt::Display for ThreadsEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Zero => write!(
                f,
                "QFC_THREADS=0 is invalid: the worker pool needs at least one thread \
                 (unset QFC_THREADS to use all cores)"
            ),
            Self::NotANumber(raw) => write!(
                f,
                "QFC_THREADS={raw:?} is not a positive integer (e.g. QFC_THREADS=4)"
            ),
            Self::Overflow(raw) => write!(
                f,
                "QFC_THREADS={raw:?} overflows the platform thread count (usize)"
            ),
        }
    }
}

impl std::error::Error for ThreadsEnvError {}

/// Parses a `QFC_THREADS` value: a positive decimal integer, with
/// surrounding whitespace tolerated. Rejects `0`, garbage, and values
/// that overflow `usize` — each with a distinct, actionable error.
pub fn parse_threads_spec(raw: &str) -> Result<usize, ThreadsEnvError> {
    let trimmed = raw.trim();
    if trimmed.is_empty() || !trimmed.chars().all(|c| c.is_ascii_digit()) {
        return Err(ThreadsEnvError::NotANumber(raw.to_owned()));
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err(ThreadsEnvError::Zero),
        Ok(n) => Ok(n),
        // All-digit input that fails to parse can only be overflow.
        Err(_) => Err(ThreadsEnvError::Overflow(raw.to_owned())),
    }
}

/// Like [`max_threads`], but surfaces an invalid `QFC_THREADS` value as
/// an error instead of warning and falling back. Binaries call this at
/// startup so a typo'd override fails loudly before any work runs.
pub fn try_max_threads() -> Result<usize, ThreadsEnvError> {
    if IN_WORKER.with(Cell::get) {
        return Ok(1);
    }
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return Ok(n.max(1));
    }
    if let Ok(raw) = std::env::var("QFC_THREADS") {
        return parse_threads_spec(&raw);
    }
    Ok(std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1))
}

/// Returns the worker-pool size parallel calls on this thread will use.
///
/// Resolution order: [`with_threads`] override, then the `QFC_THREADS`
/// environment variable, then `std::thread::available_parallelism()`.
/// Always at least 1; inside a pool worker this returns 1 (nested
/// parallelism is suppressed).
///
/// An invalid `QFC_THREADS` value (`0`, garbage, overflow) is **not**
/// silently ignored: a warning naming the rejected value is printed to
/// stderr once per process, and the pool falls back to
/// `available_parallelism()`. Use [`try_max_threads`] to fail instead —
/// binaries validate through it at startup.
pub fn max_threads() -> usize {
    match try_max_threads() {
        Ok(n) => n,
        Err(e) => {
            warn_bad_threads_env_once(&e);
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// Prints the invalid-`QFC_THREADS` warning at most once per process, so
/// a hot loop calling [`max_threads`] cannot flood stderr.
fn warn_bad_threads_env_once(e: &ThreadsEnvError) {
    use std::sync::atomic::AtomicBool;
    static WARNED: AtomicBool = AtomicBool::new(false);
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!("warning: ignoring invalid QFC_THREADS: {e}");
    }
}

/// Runs `f` with the worker-pool size pinned to `threads` on this thread.
///
/// The override is thread-local, so concurrent tests comparing thread
/// counts never race on global state. Restored (panic-safe) on exit.
pub fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(threads.max(1)))));
    f()
}

/// Executes `n_tasks` indexed tasks on the pool and returns their
/// results in task-index order.
///
/// This is the single scheduling primitive behind the public entry
/// points. Workers pull task indices from a shared atomic counter
/// (dynamic load balancing), collect `(index, result)` pairs locally,
/// and the caller reassembles them by index — so the output order never
/// depends on scheduling.
fn execute<U, F>(n_tasks: usize, task: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = max_threads().min(n_tasks);
    // Observability: one span per execute call, a gauge for the resolved
    // pool size, and the collector handle captured on the caller thread
    // so pool workers can keep counters flowing. Task bodies run in
    // qfc_obs task mode on the serial path and on workers alike, so the
    // exported span tree never depends on scheduling. All of this is a
    // no-op when no collector is installed.
    let obs = qfc_obs::current();
    let _span = qfc_obs::span("runtime.execute");
    qfc_obs::gauge_set("pool_threads", cast::to_f64(threads.max(1)));
    if threads <= 1 {
        return match &obs {
            Some(collector) => collector.run_task(|| (0..n_tasks).map(&task).collect()),
            None => (0..n_tasks).map(task).collect(),
        };
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n_tasks);
    slots.resize_with(n_tasks, || None);

    std::thread::scope(|scope| {
        let obs = &obs;
        let next = &next;
        let task = &task;
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    IN_WORKER.with(|c| c.set(true));
                    let drain = || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n_tasks {
                                break;
                            }
                            local.push((i, task(i)));
                        }
                        local
                    };
                    match obs {
                        Some(collector) => collector.run_task(drain),
                        None => drain(),
                    }
                })
            })
            .collect();
        for worker in workers {
            let local = match worker.join() {
                Ok(local) => local,
                // Re-raise the worker's panic on the caller thread so a
                // panicking task behaves exactly like serial execution.
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (i, value) in local {
                slots[i] = Some(value);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| unreachable!("every task index produced a result"))) // qfc-lint: allow(panic-reachability) — invariant: the scatter loop above fills every slot exactly once
        .collect()
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// Deterministic for any thread count as long as `f(item)` depends only
/// on its argument (seed randomness via
/// [`split_seed`](qfc_mathkit::rng::split_seed) on the item index).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    execute(items.len(), |i| f(&items[i]))
}

/// Maps `f` over fixed-size chunks of `items` in parallel, preserving
/// chunk order. `f` receives the chunk index and the chunk slice.
///
/// The chunk layout matches `items.chunks(chunk_size)`, so it is
/// independent of the thread count.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_chunks<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    assert!(chunk_size > 0, "par_chunks: chunk_size must be positive");
    let n_chunks = items.len().div_ceil(chunk_size);
    execute(n_chunks, |i| {
        let start = i * chunk_size;
        let end = (start + chunk_size).min(items.len());
        f(i, &items[start..end])
    })
}

/// One shard of a sharded shot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Shard position in the fixed decomposition.
    pub index: usize,
    /// Global index of this shard's first shot.
    pub start: u64,
    /// Number of shots in this shard.
    pub len: u64,
    /// Independent RNG seed for this shard
    /// (`split_seed(root_seed, index)`).
    pub seed: u64,
}

/// Computes the fixed shard layout for `n_shots` shots rooted at `seed`.
///
/// At most [`SHOT_SHARDS`] shards; remainder shots go to the leading
/// shards so sizes differ by at most one. The layout depends only on
/// `n_shots` and `seed`.
pub fn shard_layout(n_shots: u64, seed: u64) -> Vec<Shard> {
    let n_shards = SHOT_SHARDS.min(n_shots).max(1);
    let base = n_shots / n_shards;
    let remainder = n_shots % n_shards;
    let mut shards = Vec::with_capacity(cast::u64_to_usize(n_shards));
    let mut start = 0u64;
    for index in 0..n_shards {
        let len = base + u64::from(index < remainder);
        shards.push(Shard {
            index: cast::u64_to_usize(index),
            start,
            len,
            seed: split_seed(seed, index),
        });
        start += len;
    }
    shards
}

/// Runs a sharded shot loop: `per_shard` executes once per [`Shard`]
/// (in parallel), and `merge` folds the per-shard results **in
/// shard-index order** into the final answer.
///
/// The shard layout and seeds are fixed by `(n_shots, seed)` alone, so
/// the result is bitwise-identical at any thread count.
pub fn par_shots<U, A, P, M>(n_shots: u64, seed: u64, per_shard: P, merge: M) -> A
where
    U: Send,
    P: Fn(&Shard) -> U + Sync,
    M: FnOnce(Vec<U>) -> A,
{
    let shards = shard_layout(n_shots, seed);
    qfc_obs::counter_add("shards_executed", cast::usize_to_u64(shards.len()));
    let results = execute(shards.len(), |i| per_shard(&shards[i]));
    merge(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let doubled = with_threads(4, || par_map(&items, |x| x * 2));
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_serial_at_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        let f = |x: &u64| split_seed(*x, 7);
        let serial = with_threads(1, || par_map(&items, f));
        for threads in [2, 3, 4, 8] {
            let parallel = with_threads(threads, || par_map(&items, f));
            assert_eq!(parallel, serial, "thread count {threads}");
        }
    }

    #[test]
    fn par_chunks_covers_all_items_in_order() {
        let items: Vec<u64> = (0..103).collect();
        let sums = with_threads(4, || {
            par_chunks(&items, 10, |i, chunk| (i, chunk.iter().sum::<u64>()))
        });
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.last().unwrap(), &(10, (100..103).sum::<u64>()));
        let total: u64 = sums.iter().map(|(_, s)| s).sum();
        assert_eq!(total, items.iter().sum::<u64>());
    }

    #[test]
    fn shard_layout_is_fixed_and_covers_all_shots() {
        for n_shots in [1u64, 5, 31, 32, 33, 1000, 1_000_003] {
            let shards = shard_layout(n_shots, 9);
            assert_eq!(shards, shard_layout(n_shots, 9));
            assert!(shards.len() as u64 <= SHOT_SHARDS);
            assert_eq!(shards.iter().map(|s| s.len).sum::<u64>(), n_shots);
            let mut expected_start = 0;
            for (i, shard) in shards.iter().enumerate() {
                assert_eq!(shard.index, i);
                assert_eq!(shard.start, expected_start);
                assert_eq!(shard.seed, split_seed(9, i as u64));
                expected_start += shard.len;
            }
        }
    }

    #[test]
    fn par_shots_merges_in_shard_order() {
        let order = par_shots(
            1000,
            3,
            |shard| shard.index,
            |results| results,
        );
        assert_eq!(order, (0..order.len()).collect::<Vec<_>>());
    }

    #[test]
    fn par_shots_deterministic_across_thread_counts() {
        let run = |threads| {
            with_threads(threads, || {
                par_shots(
                    10_000,
                    11,
                    |shard| {
                        use rand::Rng;
                        let mut rng = qfc_mathkit::rng::rng_from_seed(shard.seed);
                        (0..shard.len).fold(0u64, |acc, _| acc.wrapping_add(rng.gen::<u64>()))
                    },
                    |sums| sums,
                )
            })
        };
        let serial = run(1);
        assert_eq!(run(4), serial);
        assert_eq!(run(7), serial);
    }

    #[test]
    fn nested_parallel_calls_run_serially() {
        let items: Vec<u64> = (0..8).collect();
        let nested = with_threads(4, || {
            par_map(&items, |_| {
                // Inside a worker the pool reports a single thread.
                max_threads()
            })
        });
        assert!(nested.iter().all(|&n| n == 1), "{nested:?}");
    }

    #[test]
    fn collector_counters_flow_through_workers() {
        let collector = qfc_obs::Collector::new();
        let items: Vec<u64> = (0..64).collect();
        collector.install(|| {
            with_threads(4, || {
                par_map(&items, |_| qfc_obs::counter_add("shots_simulated", 1))
            });
        });
        assert_eq!(collector.snapshot().counter("shots_simulated"), Some(64));
    }

    #[test]
    fn trace_is_thread_count_invariant() {
        let trace_at = |threads: usize| {
            let collector = qfc_obs::Collector::new();
            collector.install(|| {
                with_threads(threads, || {
                    let _outer = qfc_obs::span("workload");
                    par_shots(
                        1000,
                        5,
                        |shard| qfc_obs::counter_add("shots_simulated", shard.len),
                        |_| (),
                    );
                });
            });
            collector.snapshot().to_deterministic_json()
        };
        let serial = trace_at(1);
        assert_eq!(trace_at(4), serial);
        assert_eq!(trace_at(8), serial);
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let outside = max_threads();
        with_threads(3, || assert_eq!(max_threads(), 3));
        assert_eq!(max_threads(), outside);
    }

    #[test]
    fn threads_spec_accepts_positive_integers() {
        assert_eq!(parse_threads_spec("1"), Ok(1));
        assert_eq!(parse_threads_spec("8"), Ok(8));
        assert_eq!(parse_threads_spec("  16 "), Ok(16));
        assert_eq!(parse_threads_spec("\t4\n"), Ok(4));
    }

    #[test]
    fn threads_spec_rejects_zero() {
        assert_eq!(parse_threads_spec("0"), Err(ThreadsEnvError::Zero));
        assert_eq!(parse_threads_spec(" 0 "), Err(ThreadsEnvError::Zero));
        // Leading zeros still parse to zero.
        assert_eq!(parse_threads_spec("000"), Err(ThreadsEnvError::Zero));
        assert!(ThreadsEnvError::Zero.to_string().contains("at least one thread"));
    }

    #[test]
    fn threads_spec_rejects_garbage() {
        for raw in ["", "  ", "abc", "4x", "-1", "+2", "1_000", "3.5", "0x10", "４"] {
            let err = parse_threads_spec(raw).expect_err(raw);
            assert_eq!(err, ThreadsEnvError::NotANumber(raw.to_owned()), "{raw:?}");
            assert!(err.to_string().contains("not a positive integer"), "{raw:?}");
        }
    }

    #[test]
    fn threads_spec_rejects_overflow() {
        let huge = "99999999999999999999999999999";
        let err = parse_threads_spec(huge).expect_err("overflow");
        assert_eq!(err, ThreadsEnvError::Overflow(huge.to_owned()));
        assert!(err.to_string().contains("overflows"));
        // usize::MAX itself parses; one digit more overflows.
        let max = usize::MAX.to_string();
        assert_eq!(parse_threads_spec(&max), Ok(usize::MAX));
        let over = format!("{max}0");
        assert!(matches!(
            parse_threads_spec(&over),
            Err(ThreadsEnvError::Overflow(_))
        ));
    }

    #[test]
    fn try_max_threads_honors_override_and_worker_state() {
        // The with_threads override bypasses the environment entirely, so
        // this test is race-free even if another test mutated QFC_THREADS.
        let n = with_threads(5, || try_max_threads());
        assert_eq!(n, Ok(5));
        let nested: Vec<Result<usize, ThreadsEnvError>> =
            with_threads(4, || par_map(&[0u64; 4], |_| try_max_threads()));
        assert!(nested.iter().all(|r| r == &Ok(1)), "{nested:?}");
    }
}
