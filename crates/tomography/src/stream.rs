//! Streaming count accumulation: fold per-shard outcome histograms into
//! [`TomographyData`] without materializing per-shot tables.
//!
//! The qudit roadmap pushes tomography toward d²×d² density matrices,
//! where a run's count data arrives as many independent shards — one
//! split-seed stream per setting from the parallel runtime, or one
//! checkpointed campaign shard per setting range. [`CountAccumulator`]
//! is the validated fold target for those histograms: it fixes the
//! setting list once (rejecting empty or mixed-arity lists up front,
//! the degenerate inputs that used to surface as NaN cascades deep in
//! the reconstructor), then absorbs histograms shard by shard and
//! finishes into a plain [`TomographyData`].
//!
//! [`try_stream_counts_seeded`] drives the accumulator with the exact
//! per-setting stream protocol of
//! [`simulate_counts_seeded`](crate::counts::simulate_counts_seeded)
//! (`split_seed(seed, setting_index)` per setting), so its output is
//! byte-identical to the materializing path at any thread count — the
//! property `tests/` pins with a 1/4/8-thread proptest.

use qfc_faults::{QfcError, QfcResult};
use qfc_mathkit::cast;
use qfc_mathkit::rng::split_seed;
use qfc_quantum::density::DensityMatrix;

use crate::counts::{setting_histogram, TomographyData};
use crate::settings::Setting;

/// A validated, incrementally-fed count table.
///
/// Construction pins the setting list (non-empty, uniform arity);
/// [`CountAccumulator::absorb_histogram`] then folds one shard's
/// histogram for one setting at a time, and
/// [`CountAccumulator::finish`] hands the accumulated counts over as a
/// [`TomographyData`]. Absorption is commutative over shards of
/// *different* settings and additive within a setting, so any shard
/// arrival order produces the same table.
#[derive(Debug, Clone)]
pub struct CountAccumulator {
    settings: Vec<Setting>,
    counts: Vec<Vec<u64>>,
    shards_absorbed: u64,
}

impl CountAccumulator {
    /// Pins the setting list and zero-initializes the count table.
    ///
    /// # Errors
    ///
    /// [`QfcError::InsufficientData`] for an empty or mixed-arity
    /// setting list — the degenerate shapes the reconstruction pipeline
    /// rejects.
    pub fn try_new(settings: &[Setting]) -> QfcResult<Self> {
        let Some(first) = settings.first() else {
            return Err(QfcError::InsufficientData {
                context: "count accumulator needs at least one setting".to_owned(),
            });
        };
        let n = first.qubits();
        for (s, setting) in settings.iter().enumerate() {
            if setting.qubits() != n {
                return Err(QfcError::InsufficientData {
                    context: format!(
                        "mixed-arity setting list: setting {s} measures {} qubit(s) \
                         but setting 0 measures {n}",
                        setting.qubits()
                    ),
                });
            }
        }
        let counts = settings.iter().map(|s| vec![0u64; s.outcomes()]).collect();
        Ok(Self {
            settings: settings.to_vec(),
            counts,
            shards_absorbed: 0,
        })
    }

    /// Number of qubits every pinned setting measures.
    pub fn qubits(&self) -> usize {
        self.settings
            .first()
            .map_or(0, Setting::qubits)
    }

    /// Number of pinned settings.
    pub fn settings(&self) -> usize {
        self.settings.len()
    }

    /// Histogram shards absorbed so far.
    pub fn shards_absorbed(&self) -> u64 {
        self.shards_absorbed
    }

    /// Events accumulated across all settings so far.
    pub fn grand_total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Folds one shard's outcome histogram into setting `s`.
    ///
    /// # Errors
    ///
    /// [`QfcError::InvalidParameter`] when `s` is out of range, the
    /// histogram length doesn't match the setting's outcome count, or an
    /// accumulated count would overflow `u64`.
    pub fn absorb_histogram(&mut self, s: usize, histogram: &[u64]) -> QfcResult<()> {
        let Some(row) = self.counts.get_mut(s) else {
            return Err(QfcError::invalid(format!(
                "count accumulator has {} setting(s), shard targets setting {s}",
                self.settings.len()
            )));
        };
        if histogram.len() != row.len() {
            return Err(QfcError::invalid(format!(
                "setting {s} shard has {} outcome slot(s), expected {}",
                histogram.len(),
                row.len()
            )));
        }
        // qfc-lint: hot
        for (acc, &h) in row.iter_mut().zip(histogram) {
            *acc = acc.checked_add(h).ok_or_else(|| {
                QfcError::invalid(format!("setting {s} count overflowed u64"))
            })?;
        }
        self.shards_absorbed += 1;
        Ok(())
    }

    /// Folds a partial [`TomographyData`] (same setting list) in —
    /// the merge step for campaign shards that each cover a setting
    /// range and serialize their partial table.
    ///
    /// # Errors
    ///
    /// [`QfcError::InvalidParameter`] when the partial's setting list
    /// differs from the pinned one or a histogram is malformed.
    pub fn absorb_partial(&mut self, partial: &TomographyData) -> QfcResult<()> {
        if partial.settings != self.settings {
            return Err(QfcError::invalid(
                "partial tomography data was taken under a different setting list",
            ));
        }
        for (s, histogram) in partial.counts.iter().enumerate() {
            self.absorb_histogram(s, histogram)?;
        }
        Ok(())
    }

    /// Hands the accumulated table over. The result may still be
    /// degenerate (zero grand total) — reconstruction entry points
    /// validate that, so an all-dark run surfaces as a
    /// [`QfcError::SingularSystem`] there rather than a panic here.
    pub fn finish(self) -> TomographyData {
        TomographyData {
            settings: self.settings,
            counts: self.counts,
        }
    }
}

/// Streaming variant of
/// [`simulate_counts_seeded`](crate::counts::simulate_counts_seeded):
/// simulates every setting's histogram on its own split-seed stream
/// (`split_seed(seed, setting_index)`, the identical draw protocol) and
/// folds the shards through a [`CountAccumulator`] instead of
/// assembling the table by collection. Byte-identical to the
/// materializing path at any thread count.
///
/// # Errors
///
/// [`QfcError::InsufficientData`] for an empty or mixed-arity setting
/// list, [`QfcError::InvalidParameter`] when a setting doesn't match
/// the state dimension.
pub fn try_stream_counts_seeded(
    rho: &DensityMatrix,
    settings: &[Setting],
    shots_per_setting: u64,
    seed: u64,
) -> QfcResult<TomographyData> {
    let mut acc = CountAccumulator::try_new(settings)?;
    if acc.qubits() != rho.qubits() {
        return Err(QfcError::invalid(format!(
            "settings measure {} qubit(s) but the state has {}",
            acc.qubits(),
            rho.qubits()
        )));
    }
    let indexed: Vec<usize> = (0..settings.len()).collect();
    let histogram = |s: usize| {
        setting_histogram(
            rho,
            &settings[s],
            shots_per_setting,
            split_seed(seed, cast::usize_to_u64(s)),
        )
    };
    // Same serial-below-grain rule as `simulate_counts_seeded`: tiny
    // jobs pay more for pool dispatch than for the sampling itself,
    // and the per-setting streams make serial and parallel runs
    // byte-identical anyway.
    let histograms = if shots_per_setting < crate::counts::PAR_MIN_SHOTS_PER_SETTING {
        indexed.iter().map(|&s| histogram(s)).collect::<Vec<_>>()
    } else {
        qfc_runtime::par_map(&indexed, |&s| histogram(s))
    };
    for (s, histogram) in histograms.iter().enumerate() {
        acc.absorb_histogram(s, histogram)?;
    }
    qfc_obs::counter_add("tomography_stream_shards", acc.shards_absorbed());
    Ok(acc.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::simulate_counts_seeded;
    use crate::settings::{all_settings, PauliBasis};
    use qfc_quantum::bell::werner_state;

    #[test]
    fn streaming_matches_materializing_path_bit_for_bit() {
        let truth = werner_state(0.83, 0.0);
        let settings = all_settings(2);
        let direct = simulate_counts_seeded(&truth, &settings, 400, 17);
        let streamed =
            try_stream_counts_seeded(&truth, &settings, 400, 17).expect("valid settings");
        assert_eq!(direct, streamed);
    }

    #[test]
    fn accumulator_rejects_empty_and_mixed_arity() {
        let err = CountAccumulator::try_new(&[]).expect_err("empty");
        assert!(matches!(err, QfcError::InsufficientData { .. }));
        let mixed = [
            Setting::from_bases(&[PauliBasis::Z]),
            Setting::from_bases(&[PauliBasis::Z, PauliBasis::X]),
        ];
        let err = CountAccumulator::try_new(&mixed).expect_err("mixed arity");
        assert!(err.to_string().contains("mixed-arity"));
    }

    #[test]
    fn absorb_validates_shape_and_range() {
        let settings = all_settings(1);
        let mut acc = CountAccumulator::try_new(&settings).expect("valid");
        assert!(acc.absorb_histogram(0, &[1, 2]).is_ok());
        assert!(acc.absorb_histogram(7, &[1, 2]).is_err());
        assert!(acc.absorb_histogram(1, &[1, 2, 3]).is_err());
        assert!(acc.absorb_histogram(2, &[u64::MAX, 0]).is_ok());
        let err = acc.absorb_histogram(2, &[1, 0]).expect_err("overflow");
        assert!(err.to_string().contains("overflow"));
        assert_eq!(acc.shards_absorbed(), 2);
    }

    #[test]
    fn shard_arrival_order_is_immaterial() {
        let truth = werner_state(0.7, 0.1);
        let settings = all_settings(2);
        let direct = simulate_counts_seeded(&truth, &settings, 150, 29);
        let mut acc = CountAccumulator::try_new(&settings).expect("valid");
        // Absorb the per-setting histograms in reverse, split into two
        // half-shards each.
        for s in (0..settings.len()).rev() {
            let h = &direct.counts[s];
            let partial: Vec<u64> = h.iter().map(|&c| c / 2).collect();
            let rest: Vec<u64> = h
                .iter()
                .zip(&partial)
                .map(|(&c, &p)| c - p)
                .collect();
            acc.absorb_histogram(s, &partial).expect("first half");
            acc.absorb_histogram(s, &rest).expect("second half");
        }
        assert_eq!(acc.grand_total(), direct.grand_total());
        assert_eq!(acc.finish(), direct);
    }

    #[test]
    fn absorb_partial_requires_matching_settings() {
        let truth = werner_state(0.8, 0.0);
        let settings = all_settings(2);
        let data = simulate_counts_seeded(&truth, &settings, 100, 3);
        let mut acc = CountAccumulator::try_new(&settings).expect("valid");
        acc.absorb_partial(&data).expect("matching settings fold");
        assert_eq!(acc.grand_total(), data.grand_total());
        let other = CountAccumulator::try_new(&all_settings(1)).expect("valid");
        let mut other = other;
        assert!(other.absorb_partial(&data).is_err());
    }

    #[test]
    fn stream_rejects_state_dimension_mismatch() {
        let truth = werner_state(0.8, 0.0); // 2 qubits
        let err = try_stream_counts_seeded(&truth, &all_settings(1), 10, 1)
            .expect_err("dimension mismatch");
        assert!(matches!(err, QfcError::InvalidParameter { .. }));
    }
}
