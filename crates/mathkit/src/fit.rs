//! Least-squares fits used to extract the paper's observables:
//! exponential coincidence decays (→ linewidth), interference fringes
//! (→ visibility), and power laws (→ OPO threshold slopes).
//!
//! Every fit exists in two forms: a fallible `try_*` function returning
//! [`FitError`] on degenerate input, and the original panicking wrapper
//! kept for call sites where a failure is a programming error.

use crate::cast;
use serde::{Deserialize, Serialize};

/// Why a fit could not be performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitError {
    /// `x` and `y` have different lengths.
    LengthMismatch,
    /// Too few (usable) points for the model's degrees of freedom.
    InsufficientData,
    /// The normal equations are singular (degenerate abscissae).
    Degenerate,
    /// A NaN or infinity appeared in the input or during elimination.
    NonFinite,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LengthMismatch => write!(f, "length mismatch"),
            Self::InsufficientData => write!(f, "insufficient data"),
            Self::Degenerate => write!(f, "degenerate (singular) system"),
            Self::NonFinite => write!(f, "non-finite value"),
        }
    }
}

impl std::error::Error for FitError {}

/// Result of an ordinary linear least-squares fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect fit).
    pub r_squared: f64,
}

/// Fallible form of [`fit_linear`].
pub fn try_fit_linear(x: &[f64], y: &[f64]) -> Result<LinearFit, FitError> {
    if x.len() != y.len() {
        return Err(FitError::LengthMismatch);
    }
    if x.len() < 2 {
        return Err(FitError::InsufficientData);
    }
    let n = cast::to_f64(x.len());
    let sx: f64 = x.iter().sum();
    let sy: f64 = y.iter().sum();
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
    let denom = n * sxx - sx * sx;
    if !denom.is_finite() {
        return Err(FitError::NonFinite);
    }
    if denom.abs() == 0.0 {
        return Err(FitError::Degenerate);
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    if !slope.is_finite() || !intercept.is_finite() {
        return Err(FitError::NonFinite);
    }

    let mean_y = sy / n;
    let ss_tot: f64 = y.iter().map(|v| (v - mean_y).powi(2)).sum();
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| (b - (slope * a + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot > 0.0 {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    } else {
        1.0
    };
    Ok(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Fits `y = slope·x + intercept` by ordinary least squares.
///
/// # Panics
///
/// Panics if fewer than two points are given or lengths differ.
///
/// ```
/// use qfc_mathkit::fit::fit_linear;
/// let f = fit_linear(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]);
/// assert!((f.slope - 2.0).abs() < 1e-12);
/// assert!((f.intercept - 1.0).abs() < 1e-12);
/// assert!((f.r_squared - 1.0).abs() < 1e-12);
/// ```
pub fn fit_linear(x: &[f64], y: &[f64]) -> LinearFit {
    match try_fit_linear(x, y) {
        Ok(f) => f,
        Err(e) => panic!("fit_linear: {e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// Result of an exponential-decay fit `y(t) = amplitude · e^{−t/tau}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExponentialFit {
    /// Amplitude at `t = 0`.
    pub amplitude: f64,
    /// Decay time constant `tau` (same units as `t`).
    pub tau: f64,
    /// R² of the underlying log-linear fit.
    pub r_squared: f64,
}

/// Fallible form of [`fit_exponential_decay`].
///
/// Points with `y <= 0` are ignored (they carry no logarithmic
/// information); each retained point is weighted by `y`, the
/// inverse-variance weight for Poisson counts in the log domain.
pub fn try_fit_exponential_decay(t: &[f64], y: &[f64]) -> Result<ExponentialFit, FitError> {
    if t.len() != y.len() {
        return Err(FitError::LengthMismatch);
    }
    let pts: Vec<(f64, f64, f64)> = t
        .iter()
        .zip(y)
        .filter(|&(_, &yv)| yv > 0.0)
        .map(|(&tv, &yv)| (tv, yv.ln(), yv))
        .collect();
    if pts.len() < 2 {
        return Err(FitError::InsufficientData);
    }
    let sw: f64 = pts.iter().map(|p| p.2).sum();
    let swx: f64 = pts.iter().map(|p| p.2 * p.0).sum();
    let swy: f64 = pts.iter().map(|p| p.2 * p.1).sum();
    let swxx: f64 = pts.iter().map(|p| p.2 * p.0 * p.0).sum();
    let swxy: f64 = pts.iter().map(|p| p.2 * p.0 * p.1).sum();
    let denom = sw * swxx - swx * swx;
    if !denom.is_finite() {
        return Err(FitError::NonFinite);
    }
    if denom.abs() == 0.0 {
        return Err(FitError::Degenerate);
    }
    let slope = (sw * swxy - swx * swy) / denom;
    let intercept = (swy - slope * swx) / sw;
    if !slope.is_finite() || !intercept.is_finite() {
        return Err(FitError::NonFinite);
    }

    let mean_y = swy / sw;
    let ss_tot: f64 = pts.iter().map(|p| p.2 * (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = pts
        .iter()
        .map(|p| p.2 * (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot > 0.0 {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    } else {
        1.0
    };
    Ok(ExponentialFit {
        amplitude: intercept.exp(),
        tau: -1.0 / slope,
        r_squared,
    })
}

/// Fits an exponential decay via weighted log-linear least squares.
///
/// # Panics
///
/// Panics if fewer than two positive points remain.
pub fn fit_exponential_decay(t: &[f64], y: &[f64]) -> ExponentialFit {
    match try_fit_exponential_decay(t, y) {
        Ok(f) => f,
        Err(e) => panic!("fit_exponential_decay: {e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// Result of a sinusoidal fringe fit
/// `y(φ) = offset · (1 + visibility · cos(φ + phase0))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FringeFit {
    /// Mean level of the fringe.
    pub offset: f64,
    /// Raw visibility `(max − min)/(max + min)` of the fitted curve.
    pub visibility: f64,
    /// Phase of the cosine at `φ = 0`.
    pub phase0: f64,
}

/// Fallible form of [`fit_fringe`].
pub fn try_fit_fringe(phase: &[f64], y: &[f64]) -> Result<FringeFit, FitError> {
    try_fit_fringe_harmonic(phase, y, 1)
}

/// Fits an interference fringe `y = a0 + a1·cos φ + a2·sin φ` by linear
/// least squares on the harmonic basis, returning the equivalent
/// offset/visibility/phase parametrization.
///
/// This is exactly how two-photon (and four-photon) interference
/// visibilities are extracted from coincidence-vs-phase scans in §IV–V.
///
/// # Panics
///
/// Panics if fewer than three points are given or lengths differ.
pub fn fit_fringe(phase: &[f64], y: &[f64]) -> FringeFit {
    fit_fringe_harmonic(phase, y, 1)
}

/// Fallible form of [`fit_fringe_harmonic`].
pub fn try_fit_fringe_harmonic(
    phase: &[f64],
    y: &[f64],
    harmonic: u32,
) -> Result<FringeFit, FitError> {
    if phase.len() != y.len() {
        return Err(FitError::LengthMismatch);
    }
    if phase.len() < 3 {
        return Err(FitError::InsufficientData);
    }
    if harmonic == 0 {
        return Err(FitError::InsufficientData);
    }
    let k = cast::to_f64(harmonic);
    // Normal equations for basis [1, cos kφ, sin kφ].
    let mut ata = [[0.0f64; 3]; 3];
    let mut atb = [0.0f64; 3];
    for (&p, &v) in phase.iter().zip(y) {
        let basis = [1.0, (k * p).cos(), (k * p).sin()];
        for i in 0..3 {
            for j in 0..3 {
                ata[i][j] += basis[i] * basis[j];
            }
            atb[i] += basis[i] * v;
        }
    }
    let coeffs = try_solve3(ata, atb)?;
    let a0 = coeffs[0];
    let amp = (coeffs[1] * coeffs[1] + coeffs[2] * coeffs[2]).sqrt();
    // y = a0 + amp·cos(kφ + phase0) with phase0 = atan2(−a2, a1).
    let phase0 = (-coeffs[2]).atan2(coeffs[1]);
    let visibility = if a0.abs() > 0.0 { amp / a0 } else { 0.0 };
    Ok(FringeFit {
        offset: a0,
        visibility,
        phase0,
    })
}

/// Fringe fit against `cos(k·φ)` — `k = 2` is used for the four-photon
/// interference of §V where the coincidence rate oscillates at twice the
/// analyzer phase when scanning the common phase of two Bell pairs.
///
/// # Panics
///
/// Panics if fewer than three points are given, lengths differ, or
/// `harmonic == 0`.
// qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract); the fn-level allow covers both match arms
pub fn fit_fringe_harmonic(phase: &[f64], y: &[f64], harmonic: u32) -> FringeFit {
    match try_fit_fringe_harmonic(phase, y, harmonic) {
        Ok(f) => f,
        Err(FitError::Degenerate) => panic!("singular system in fringe fit"),
        Err(e) => panic!("fit_fringe: {e}"),
    }
}

/// Solves a 3×3 linear system by Gaussian elimination with partial
/// pivoting. Returns [`FitError::NonFinite`] if the system contains NaN
/// and [`FitError::Degenerate`] if a pivot vanishes.
pub fn try_solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Result<[f64; 3], FitError> {
    if a.iter().flatten().any(|v| !v.is_finite()) || b.iter().any(|v| !v.is_finite()) {
        return Err(FitError::NonFinite);
    }
    for col in 0..3 {
        let pivot = (col..3)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .unwrap_or(col);
        a.swap(col, pivot);
        b.swap(col, pivot);
        if a[col][col].abs() <= 1e-300 {
            return Err(FitError::Degenerate);
        }
        for row in (col + 1)..3 {
            let f = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (entry, &p) in a[row][col..].iter_mut().zip(&pivot_row[col..]) {
                *entry -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut s = b[row];
        for k in (row + 1)..3 {
            s -= a[row][k] * x[k];
        }
        x[row] = s / a[row][row];
    }
    if x.iter().any(|v| !v.is_finite()) {
        return Err(FitError::NonFinite);
    }
    Ok(x)
}

/// Result of a power-law fit `y = prefactor · x^exponent`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// Fitted exponent (log-log slope).
    pub exponent: f64,
    /// Fitted prefactor.
    pub prefactor: f64,
    /// R² of the underlying log-log linear fit.
    pub r_squared: f64,
}

/// Fallible form of [`fit_power_law`]. Non-positive points are ignored.
pub fn try_fit_power_law(x: &[f64], y: &[f64]) -> Result<PowerLawFit, FitError> {
    if x.len() != y.len() {
        return Err(FitError::LengthMismatch);
    }
    let (lx, ly): (Vec<f64>, Vec<f64>) = x
        .iter()
        .zip(y)
        .filter(|&(&a, &b)| a > 0.0 && b > 0.0)
        .map(|(&a, &b)| (a.ln(), b.ln()))
        .unzip();
    if lx.len() < 2 {
        return Err(FitError::InsufficientData);
    }
    let f = try_fit_linear(&lx, &ly)?;
    Ok(PowerLawFit {
        exponent: f.slope,
        prefactor: f.intercept.exp(),
        r_squared: f.r_squared,
    })
}

/// Fits `y = prefactor · x^exponent` by linear regression in log-log space.
///
/// Non-positive points are ignored. Used to verify the §III claim that the
/// OPO output grows **quadratically** below threshold and **linearly**
/// above it.
///
/// # Panics
///
/// Panics if fewer than two strictly positive points remain.
pub fn fit_power_law(x: &[f64], y: &[f64]) -> PowerLawFit {
    match try_fit_power_law(x, y) {
        Ok(f) => f,
        Err(e) => panic!("fit_power_law: {e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// Raw fringe visibility `(max − min)/(max + min)` from sampled values.
///
/// Returns `NaN` for an empty slice; clamps tiny negative results caused by
/// noise to `0`.
pub fn raw_visibility(y: &[f64]) -> f64 {
    if y.is_empty() {
        return f64::NAN;
    }
    let max = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = y.iter().cloned().fold(f64::INFINITY, f64::min);
    if max + min <= 0.0 {
        return 0.0;
    }
    ((max - min) / (max + min)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_exact() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [-1.0, 1.0, 3.0, 5.0];
        let f = fit_linear(&x, &y);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept + 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_noisy_r2_below_one() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [0.1, 0.9, 2.2, 2.8, 4.1];
        let f = fit_linear(&x, &y);
        assert!(f.r_squared > 0.97 && f.r_squared < 1.0);
    }

    #[test]
    fn exponential_fit_recovers_tau() {
        let tau = 1.45e-9;
        let t: Vec<f64> = (0..50).map(|i| i as f64 * 0.1e-9).collect();
        let y: Vec<f64> = t.iter().map(|&tv| 1000.0 * (-tv / tau).exp()).collect();
        let f = fit_exponential_decay(&t, &y);
        assert!((f.tau - tau).abs() / tau < 1e-6, "tau {}", f.tau);
        assert!((f.amplitude - 1000.0).abs() < 1e-3);
    }

    #[test]
    fn exponential_fit_ignores_zeros() {
        let t = [0.0, 1.0, 2.0, 3.0];
        let y = [8.0, 4.0, 0.0, 1.0];
        // Zero point dropped; fit still through the three positive points.
        let f = fit_exponential_decay(&t, &y);
        assert!(f.tau > 0.0);
    }

    #[test]
    fn fringe_fit_recovers_visibility_and_phase() {
        let phases: Vec<f64> = (0..32).map(|i| i as f64 * 0.2).collect();
        let v_true = 0.83;
        let p0 = 0.7;
        let y: Vec<f64> = phases
            .iter()
            .map(|&p| 120.0 * (1.0 + v_true * (p + p0).cos()))
            .collect();
        let f = fit_fringe(&phases, &y);
        assert!((f.visibility - v_true).abs() < 1e-9, "{}", f.visibility);
        assert!((f.offset - 120.0).abs() < 1e-6);
        assert!((f.phase0 - p0).abs() < 1e-9);
    }

    #[test]
    fn fringe_fit_second_harmonic() {
        let phases: Vec<f64> = (0..64).map(|i| i as f64 * 0.1).collect();
        let y: Vec<f64> = phases
            .iter()
            .map(|&p| 50.0 * (1.0 + 0.89 * (2.0 * p).cos()))
            .collect();
        let f = fit_fringe_harmonic(&phases, &y, 2);
        assert!((f.visibility - 0.89).abs() < 1e-9);
        assert!(f.phase0.abs() < 1e-9);
    }

    #[test]
    fn fringe_fit_flat_signal_zero_visibility() {
        let phases: Vec<f64> = (0..16).map(|i| i as f64 * 0.4).collect();
        let y = vec![77.0; 16];
        let f = fit_fringe(&phases, &y);
        assert!(f.visibility < 1e-9);
    }

    #[test]
    fn power_law_quadratic() {
        let x: Vec<f64> = (1..20).map(|i| i as f64 * 0.5e-3).collect();
        let y: Vec<f64> = x.iter().map(|&p| 3.0 * p * p).collect();
        let f = fit_power_law(&x, &y);
        assert!((f.exponent - 2.0).abs() < 1e-9);
        assert!((f.prefactor - 3.0).abs() < 1e-6);
    }

    #[test]
    fn raw_visibility_known() {
        assert!((raw_visibility(&[1.0, 9.0]) - 0.8).abs() < 1e-12);
        assert!(raw_visibility(&[]).is_nan());
        assert_eq!(raw_visibility(&[0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn linear_fit_length_mismatch() {
        let _ = fit_linear(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn try_solve3_rejects_nan() {
        let a = [[1.0, 0.0, 0.0], [0.0, f64::NAN, 0.0], [0.0, 0.0, 1.0]];
        assert_eq!(try_solve3(a, [1.0, 1.0, 1.0]), Err(FitError::NonFinite));
    }

    #[test]
    fn try_solve3_rejects_singular() {
        let a = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.5, 1.0, 1.5]];
        assert_eq!(try_solve3(a, [1.0, 2.0, 0.5]), Err(FitError::Degenerate));
    }

    #[test]
    fn try_fit_linear_errors() {
        assert_eq!(
            try_fit_linear(&[1.0], &[1.0, 2.0]),
            Err(FitError::LengthMismatch)
        );
        assert_eq!(try_fit_linear(&[1.0], &[1.0]), Err(FitError::InsufficientData));
        assert_eq!(
            try_fit_linear(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(FitError::Degenerate)
        );
        assert_eq!(
            try_fit_linear(&[0.0, f64::NAN], &[1.0, 2.0]),
            Err(FitError::NonFinite)
        );
    }

    #[test]
    fn try_fit_fringe_degenerate_phases() {
        // All phases identical → singular harmonic basis.
        let phases = vec![0.3; 8];
        let y = vec![1.0; 8];
        assert_eq!(
            try_fit_fringe(&phases, &y),
            Err(FitError::Degenerate)
        );
    }

    #[test]
    fn try_fit_fringe_nan_input() {
        let phases: Vec<f64> = (0..8).map(|i| i as f64 * 0.5).collect();
        let mut y: Vec<f64> = phases.iter().map(|&p| 1.0 + p.cos()).collect();
        y[3] = f64::NAN;
        assert_eq!(
            try_fit_fringe(&phases, &y),
            Err(FitError::NonFinite)
        );
    }
}
