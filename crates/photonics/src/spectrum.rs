//! Optical spectra of the comb: below-threshold parametric fluorescence
//! and the above-threshold classical Kerr comb.
//!
//! These are the "what the OSA shows" views of the device — used by the
//! `comb_spectrum` example and to check that the quantum comb spans the
//! full S/C/L band as the paper claims.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use crate::comb::TelecomBand;
use crate::constants::PLANCK;
use crate::opo;
use crate::ring::Microring;
use crate::sweep;
use crate::units::{Frequency, Power};
use crate::waveguide::Polarization;

/// One spectral line of the comb.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CombLine {
    /// Mode index relative to the pump.
    pub index: i32,
    /// Line center frequency.
    pub frequency: Frequency,
    /// Emitted optical power in the line, W.
    pub power_w: f64,
    /// Telecom band of the line.
    pub band: TelecomBand,
}

/// The emitted comb spectrum at a given pump power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombSpectrum {
    /// Pump power used.
    pub pump_w: f64,
    /// Whether the device is above the OPO threshold.
    pub above_threshold: bool,
    /// The spectral lines, ascending in index.
    pub lines: Vec<CombLine>,
}

impl CombSpectrum {
    /// Total emitted power across all lines, W.
    pub fn total_power_w(&self) -> f64 {
        self.lines.iter().map(|l| l.power_w).sum()
    }

    /// Number of lines within `floor_db` of the strongest line.
    pub fn lines_above_floor(&self, floor_db: f64) -> usize {
        let peak = self
            .lines
            .iter()
            .map(|l| l.power_w)
            .fold(0.0f64, f64::max);
        if peak <= 0.0 {
            return 0;
        }
        let floor = peak * 10f64.powf(-floor_db / 10.0);
        self.lines.iter().filter(|l| l.power_w >= floor).count()
    }

    /// Telecom bands containing at least one line above the −30 dB floor.
    pub fn bands_covered(&self) -> Vec<TelecomBand> {
        let peak = self
            .lines
            .iter()
            .map(|l| l.power_w)
            .fold(0.0f64, f64::max);
        let floor = peak * 1e-3;
        let mut bands = Vec::new();
        for l in &self.lines {
            if l.power_w >= floor && !bands.contains(&l.band) {
                bands.push(l.band);
            }
        }
        bands
    }
}

/// Computes the emitted spectrum over modes `−max_m..=max_m` (pump line
/// excluded) for a CW pump of on-chip power `pump`.
///
/// Below threshold each line carries the parametric-fluorescence power
/// `R(m)·h·ν`; above threshold the oscillating comb power distributes
/// the OPO output over the lines with the spontaneous spectral envelope.
pub fn comb_spectrum(ring: &Microring, pump: Power, max_m: u32) -> CombSpectrum {
    let p_th = opo::threshold(ring);
    let above = pump.w() > p_th.w();
    let mut lines = Vec::with_capacity(2 * cast::u32_to_usize(max_m));
    // Envelope weights from the SFWM spectral envelope (the hoisted
    // per-channel row of the batch sweep layer).
    let weights = sweep::channel_envelopes(ring, Polarization::Te, max_m);
    let total_weight: f64 = 2.0 * weights.iter().sum::<f64>();
    let opo_power = if above {
        opo::output_power(ring, pump).w()
    } else {
        0.0
    };
    // Channel-resolved pair rates through the SoA batch kernel on a
    // single-point power grid — byte-identical to per-channel
    // `fwm::pair_rate_cw`, with γ/FE²/L/δν hoisted across the channels.
    let mut rates = sweep::BatchBuffers::with_capacity(cast::u32_to_usize(max_m));
    if !above && max_m > 0 {
        sweep::pair_rate_channels_batch(
            ring,
            Polarization::Te,
            &sweep::SweepGrid::from_points(vec![pump.w()]),
            max_m,
            &mut rates,
        );
    }
    for m in 1..=max_m {
        for sign in [-1i32, 1] {
            let idx = sign * cast::u32_to_i32(m);
            let f = ring.resonance(Polarization::Te, idx);
            let power_w = if above {
                opo_power * weights[cast::u32_to_usize(m - 1)] / total_weight
            } else {
                let rate = rates.values()[cast::u32_to_usize(m - 1)];
                rate * PLANCK * f.hz()
            };
            lines.push(CombLine {
                index: idx,
                frequency: f,
                power_w,
                band: TelecomBand::classify(f.wavelength()),
            });
        }
    }
    lines.sort_by_key(|l| l.index);
    CombSpectrum {
        pump_w: pump.w(),
        above_threshold: above,
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Microring {
        Microring::paper_device()
    }

    #[test]
    fn below_threshold_spectrum_is_weak() {
        let s = comb_spectrum(&ring(), Power::from_mw(10.0), 10);
        assert!(!s.above_threshold);
        // Parametric fluorescence: sub-femtowatt lines.
        assert!(s.total_power_w() < 1e-9, "P = {}", s.total_power_w());
        assert_eq!(s.lines.len(), 20);
    }

    #[test]
    fn above_threshold_spectrum_is_bright() {
        let s = comb_spectrum(&ring(), Power::from_mw(30.0), 10);
        assert!(s.above_threshold);
        assert!(s.total_power_w() > 1e-3, "P = {}", s.total_power_w());
    }

    #[test]
    fn spectrum_symmetric_about_pump() {
        let s = comb_spectrum(&ring(), Power::from_mw(30.0), 5);
        for m in 1..=5i32 {
            let plus = s.lines.iter().find(|l| l.index == m).expect("line");
            let minus = s.lines.iter().find(|l| l.index == -m).expect("line");
            assert!((plus.power_w - minus.power_w).abs() / plus.power_w < 1e-9);
        }
    }

    #[test]
    fn wide_comb_spans_s_c_l() {
        let s = comb_spectrum(&ring(), Power::from_mw(30.0), 40);
        let bands = s.bands_covered();
        assert!(bands.contains(&TelecomBand::S));
        assert!(bands.contains(&TelecomBand::C));
        assert!(bands.contains(&TelecomBand::L));
    }

    #[test]
    fn line_count_above_floor() {
        let s = comb_spectrum(&ring(), Power::from_mw(30.0), 20);
        // All 40 lines are within 30 dB (the envelope is gentle).
        assert_eq!(s.lines_above_floor(30.0), 40);
        assert!(s.lines_above_floor(0.0) >= 2);
    }

    #[test]
    fn threshold_transition_in_power() {
        let below = comb_spectrum(&ring(), Power::from_mw(13.0), 5);
        let above = comb_spectrum(&ring(), Power::from_mw(15.0), 5);
        assert!(above.total_power_w() > 1e3 * below.total_power_w());
    }
}
