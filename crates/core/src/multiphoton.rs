//! §V — Multi-photon entangled states.
//!
//! Reproduces:
//!
//! * **T3** — quantum state tomography of the per-channel Bell states
//!   ("confirmed generation of qubit entangled Bell states");
//! * **F8** — four-photon quantum interference with 89 % raw visibility;
//! * **T4** — four-photon state tomography with 64 % fidelity to the
//!   ideal two-Bell-pair product.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_faults::{Arm, FaultSchedule, HealthReport, QfcError, QfcResult};
use qfc_mathkit::fit::raw_visibility;
use qfc_mathkit::rng::{binomial, rng_from_seed, split_seed};
use qfc_quantum::bell::{bell_phi, concurrence};
use qfc_quantum::fidelity::fidelity_with_pure;
use qfc_quantum::multiphoton::{four_photon_fringe_point, four_photon_product, noisy_four_photon};
use qfc_tomography::reconstruct::MleOptions;
use qfc_tomography::stream::try_stream_counts_seeded;
use qfc_tomography::settings::all_settings;

use crate::report::{Comparison, Expectation, ExperimentReport};
use crate::source::QfcSource;
use crate::supervisor::{self, SupervisorPolicy};
use crate::timebin::{
    channel_state_model_boosted, nominal_duration_s, try_channel_state_model_boosted,
    TimeBinConfig,
};

/// Configuration of the §V multi-photon runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiPhotonConfig {
    /// Underlying time-bin operating point (state model per channel).
    pub timebin: TimeBinConfig,
    /// Two-photon tomography: coincidences collected per setting.
    pub bell_shots_per_setting: u64,
    /// Four-photon fringe: frames per phase point.
    pub four_fold_frames_per_point: u64,
    /// Four-photon fringe: phase points.
    pub four_fold_phase_steps: usize,
    /// Four-photon tomography: four-folds collected per setting.
    pub four_shots_per_setting: u64,
    /// White-noise fraction of the four-photon state (higher-order pair
    /// emission reaching the four-fold post-selection).
    pub four_fold_white_noise: f64,
    /// Phase-independent accidental fraction of the four-fold counts.
    pub four_fold_accidental_fraction: f64,
    /// Pump *amplitude* boost of the four-photon runs relative to the
    /// §IV operating point (`μ` scales with its square) — the rate vs
    /// visibility trade every four-photon experiment makes.
    pub four_fold_pump_factor: f64,
}

impl MultiPhotonConfig {
    /// The published §V conditions.
    pub fn paper() -> Self {
        Self {
            timebin: TimeBinConfig::paper(),
            bell_shots_per_setting: 2000,
            // ≈ 28 h of frames at 10 MHz per phase point — four-fold
            // rates are low even at the boosted pump (the real runs
            // integrated for days).
            four_fold_frames_per_point: 1_000_000_000_000,
            four_fold_phase_steps: 24,
            four_shots_per_setting: 60,
            four_fold_white_noise: 0.08,
            four_fold_accidental_fraction: 0.02,
            four_fold_pump_factor: 3.0,
        }
    }

    /// Reduced statistics for tests.
    pub fn fast_demo() -> Self {
        Self {
            timebin: TimeBinConfig::fast_demo(),
            bell_shots_per_setting: 500,
            four_fold_frames_per_point: 300_000_000_000,
            four_fold_phase_steps: 16,
            four_shots_per_setting: 40,
            ..Self::paper()
        }
    }
}

/// Result of the per-channel Bell-state tomography (T3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BellTomographyResult {
    /// Channel index.
    pub m: u32,
    /// MLE fidelity with the ideal `|Φ(φ_p)⟩`.
    pub fidelity: f64,
    /// Concurrence of the reconstructed state.
    pub concurrence: f64,
    /// MLE iterations used.
    pub iterations: usize,
}

/// Runs T3: 16-setting two-qubit tomography of each channel's time-bin
/// Bell state, reconstructed with MLE.
pub fn run_bell_tomography(
    source: &QfcSource,
    config: &MultiPhotonConfig,
    seed: u64,
) -> Vec<BellTomographyResult> {
    let channels: Vec<u32> = (1..=config.timebin.channels).collect();
    let mut health = HealthReport::pristine();
    let op = BellOperatingPoint {
        duration_s: nominal_duration_s(&config.timebin),
        amp: 1.0,
    };
    match try_run_bell_tomography(
        source,
        config,
        seed,
        &FaultSchedule::empty(),
        op,
        &channels,
        &mut health,
    ) {
        Ok(bell) => bell,
        Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// One channel's T3 tomography — the per-channel shard body of the
/// campaign decomposition. Builds the fault-adjusted operating point for
/// channel `m` (RNG-free), samples the 16-setting counts on the
/// channel's split-seed stream, and reconstructs with the MLE fallback.
/// MLE divergence is recorded in the returned local [`HealthReport`] so
/// the task stays pure; callers absorb the locals in channel order.
///
/// # Errors
///
/// As [`try_run_multiphoton_experiment`], per channel.
pub fn bell_channel_task(
    source: &QfcSource,
    config: &MultiPhotonConfig,
    seed: u64,
    schedule: &FaultSchedule,
    duration_s: f64,
    amp: f64,
    m: u32,
) -> QfcResult<(BellTomographyResult, HealthReport)> {
    let settings = all_settings(2);
    let target = bell_phi(config.timebin.pump_phase);
    let mut c = config.timebin;
    c.pump_phase += schedule.mean_phase_offset(0.0, duration_s);
    c.dark_prob_per_gate *= schedule.mean_dark_multiplier(m, 0.0, duration_s);
    let thin_s = 1.0 - schedule.dead_fraction(m, Arm::Signal, 0.0, duration_s);
    let thin_i = 1.0 - schedule.dead_fraction(m, Arm::Idler, 0.0, duration_s);
    c.arm_efficiency *= (thin_s * thin_i).sqrt();
    let model = try_channel_state_model_boosted(source, &c, m, amp)?;
    qfc_obs::counter_add(
        "shots_simulated",
        config.bell_shots_per_setting.saturating_mul(cast::usize_to_u64(settings.len())),
    );
    let mut local = HealthReport::pristine();
    // Accidentals appear as white noise in the tomography counts.
    let p_sig = model.mu
        * c.arm_efficiency.powi(2)
        * 0.125; // mean post-selected coincidence probability scale
    let white = (model.accidental_prob / (model.accidental_prob + p_sig)).clamp(0.0, 1.0);
    let rho = model.rho.depolarize(white);
    // Streaming accumulation — byte-identical to the materializing
    // `simulate_counts_seeded` (same per-setting split-seed streams).
    let data = try_stream_counts_seeded(
        &rho,
        &settings,
        config.bell_shots_per_setting,
        split_seed(seed, u64::from(m)),
    )?;
    let mle = supervisor::reconstruct_with_fallback(&data, &MleOptions::default(), &mut local)?;
    Ok((
        BellTomographyResult {
            m,
            fidelity: fidelity_with_pure(&mle.rho, &target),
            concurrence: concurrence(&mle.rho),
            iterations: mle.iterations,
        },
        local,
    ))
}

/// Fault-adjusted §IV operating point the T3 stage runs at.
#[derive(Debug, Clone, Copy)]
struct BellOperatingPoint {
    /// Nominal wall-clock duration of the underlying time-bin run, s.
    duration_s: f64,
    /// Pump amplitude factor (exactly 1.0 when clean).
    amp: f64,
}

/// Parameterized T3 body: `op` carries the fault-adjusted operating
/// point and `survivors` the channels that escaped quarantine.
fn try_run_bell_tomography(
    source: &QfcSource,
    config: &MultiPhotonConfig,
    seed: u64,
    schedule: &FaultSchedule,
    op: BellOperatingPoint,
    survivors: &[u32],
    health: &mut HealthReport,
) -> QfcResult<Vec<BellTomographyResult>> {
    // Channels are independent tomography runs on split-seed streams;
    // each inner count simulation further splits per setting. Health is
    // absorbed after the parallel stage, in channel order, so the task
    // stays pure and the record is thread-count independent.
    let per_channel: Vec<QfcResult<(BellTomographyResult, HealthReport)>> =
        qfc_runtime::par_map(survivors, |&m| {
            bell_channel_task(source, config, seed, schedule, op.duration_s, op.amp, m)
        });
    let mut bell = Vec::with_capacity(per_channel.len());
    for entry in per_channel {
        let (result, local) = entry?;
        health.absorb(local);
        bell.push(result);
    }
    Ok(bell)
}

/// Result of the four-photon interference scan (F8).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FourPhotonFringe {
    /// (common analyzer phase, four-fold counts) points.
    pub points: Vec<(f64, u64)>,
    /// Fitted raw visibility (second-harmonic fringe).
    pub visibility: f64,
}

/// Runs F8: all four photons analyzed at a common phase; four-fold
/// coincidences oscillate at the second harmonic.
pub fn run_four_photon_fringe(
    source: &QfcSource,
    config: &MultiPhotonConfig,
    seed: u64,
) -> FourPhotonFringe {
    match try_four_photon_fringe(
        source,
        config,
        seed,
        &config.timebin,
        config.four_fold_pump_factor,
    ) {
        Ok(f) => f,
        Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// Parameterized F8 body: `tb` is the (possibly fault-adjusted) time-bin
/// operating point and `pump_factor` the total pump amplitude factor.
/// Public as the fringe shard body of the campaign decomposition (drive
/// it with `seed.wrapping_add(1)` and the plan's `tb4`/`pump4` to match
/// the single-process run).
///
/// # Errors
///
/// As [`try_run_multiphoton_experiment`].
pub fn try_four_photon_fringe(
    source: &QfcSource,
    config: &MultiPhotonConfig,
    seed: u64,
    tb: &TimeBinConfig,
    pump_factor: f64,
) -> QfcResult<FourPhotonFringe> {
    let mut rng = rng_from_seed(seed);
    let model = try_channel_state_model_boosted(source, tb, 1, pump_factor)?;
    let rho4 = noisy_four_photon(
        tb.pump_phase,
        model.state_visibility,
        config.four_fold_white_noise,
    );
    // Two pairs must be emitted in the same frame; all four photons
    // detected and post-selected.
    let model2 = try_channel_state_model_boosted(source, tb, 2, pump_factor)?;
    let p4_scale = model.mu * model2.mu * tb.arm_efficiency.powi(4);
    // Phase-independent accidental floor, referenced to the fringe mean.
    let mean_point = {
        let steps = 16;
        (0..steps)
            .map(|k| {
                four_photon_fringe_point(
                    &rho4,
                    std::f64::consts::PI * cast::to_f64(k) / cast::to_f64(steps),
                )
            })
            .sum::<f64>()
            / cast::to_f64(steps)
    };
    let p_acc = config.four_fold_accidental_fraction * p4_scale * mean_point;

    qfc_obs::counter_add(
        "shots_simulated",
        config
            .four_fold_frames_per_point
            .saturating_mul(cast::usize_to_u64(config.four_fold_phase_steps)),
    );
    let mut points = Vec::with_capacity(config.four_fold_phase_steps);
    for k in 0..config.four_fold_phase_steps {
        let phi = std::f64::consts::PI * cast::to_f64(k) / cast::to_f64(config.four_fold_phase_steps);
        let p = p4_scale * four_photon_fringe_point(&rho4, phi) + p_acc;
        let counts = binomial(&mut rng, config.four_fold_frames_per_point, p);
        points.push((phi, counts));
    }
    // The four-fold fringe [(1 + V·cos2φ)/2]² is not a pure cosine (it
    // carries a 4φ harmonic), so the honest figure is the
    // background-uncorrected raw visibility (max − min)/(max + min) —
    // exactly what the paper quotes.
    let ys: Vec<f64> = points.iter().map(|&(_, c)| cast::to_f64(c)).collect();
    // A fully dark fringe (every four-fold count zero, e.g. under a
    // savage fault schedule) carries no interference information; report
    // zero visibility instead of the 0/0 NaN the raw estimator yields.
    let visibility = if ys.iter().all(|&y| y == 0.0) {
        0.0
    } else {
        raw_visibility(&ys)
    };
    Ok(FourPhotonFringe { visibility, points })
}

/// Result of the four-photon tomography (T4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FourPhotonTomography {
    /// MLE fidelity with the ideal two-Bell-pair product.
    pub fidelity: f64,
    /// MLE iterations used.
    pub iterations: usize,
    /// Total four-fold events used.
    pub total_counts: u64,
}

/// Runs T4: 81-setting four-qubit tomography of the (noisy) four-photon
/// state, reconstructed with MLE.
pub fn run_four_photon_tomography(
    source: &QfcSource,
    config: &MultiPhotonConfig,
    seed: u64,
) -> FourPhotonTomography {
    let mut health = HealthReport::pristine();
    match try_four_photon_tomography(
        source,
        config,
        seed,
        &config.timebin,
        config.four_fold_pump_factor,
        &mut health,
    ) {
        Ok(t) => t,
        Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// Parameterized T4 body with the MLE-divergence fallback. Public as
/// the tomography shard body of the campaign decomposition (drive it
/// with `seed.wrapping_add(2)` and the plan's `tb4`/`pump4`; the caller
/// supplies a health record — a shard passes a pristine local one and
/// ships it with the payload).
///
/// # Errors
///
/// As [`try_run_multiphoton_experiment`].
pub fn try_four_photon_tomography(
    source: &QfcSource,
    config: &MultiPhotonConfig,
    seed: u64,
    tb: &TimeBinConfig,
    pump_factor: f64,
    health: &mut HealthReport,
) -> QfcResult<FourPhotonTomography> {
    let rho4 = try_four_photon_state(source, config, tb, pump_factor)?;
    // 81 four-qubit settings, each sampled on its own split-seed stream.
    let settings = all_settings(4);
    qfc_obs::counter_add(
        "shots_simulated",
        config.four_shots_per_setting.saturating_mul(cast::usize_to_u64(settings.len())),
    );
    let data = try_stream_counts_seeded(&rho4, &settings, config.four_shots_per_setting, seed)?;
    four_photon_tomography_from_data(config, &data, health)
}

/// The fault-adjusted four-photon state the T4 stage measures. Public
/// as the state model of the campaign decomposition's count shards:
/// a shard covering any setting range rebuilds this state, samples its
/// settings on their `split_seed(seed, setting_index)` streams, and
/// ships the histograms.
///
/// # Errors
///
/// As [`try_run_multiphoton_experiment`] (channel-model construction).
pub fn try_four_photon_state(
    source: &QfcSource,
    config: &MultiPhotonConfig,
    tb: &TimeBinConfig,
    pump_factor: f64,
) -> QfcResult<qfc_quantum::density::DensityMatrix> {
    let model = try_channel_state_model_boosted(source, tb, 1, pump_factor)?;
    Ok(noisy_four_photon(
        tb.pump_phase,
        model.state_visibility,
        config.four_fold_white_noise,
    ))
}

/// Reconstruction tail of the T4 stage: MLE with the divergence
/// fallback, then fidelity against the intended four-photon product
/// state. Public so the campaign merge can run it over a streamed
/// count table and land on the driver's exact bytes.
///
/// # Errors
///
/// Propagates the fallback's linear-inversion error on degenerate data.
pub fn four_photon_tomography_from_data(
    config: &MultiPhotonConfig,
    data: &qfc_tomography::counts::TomographyData,
    health: &mut HealthReport,
) -> QfcResult<FourPhotonTomography> {
    let total = data.grand_total();
    let mle = supervisor::reconstruct_with_fallback(data, &MleOptions::default(), health)?;
    // The analysis targets the state the experimenter *intended* to
    // write, so a fault-induced phase offset shows up as lost fidelity.
    let target = four_photon_product(config.timebin.pump_phase);
    Ok(FourPhotonTomography {
        fidelity: fidelity_with_pure(&mle.rho, &target),
        iterations: mle.iterations,
        total_counts: total,
    })
}

/// One row of the pump-power trade scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PumpTradeRow {
    /// Pump amplitude factor relative to the §IV operating point.
    pub pump_factor: f64,
    /// Mean pairs per frame at this pump.
    pub mu: f64,
    /// Pairwise state visibility (multi-pair + phase noise + overlap).
    pub state_visibility: f64,
    /// Relative four-fold rate (∝ μ², normalized to factor 1).
    pub relative_four_fold_rate: f64,
    /// Fidelity of one dephased pair with the ideal Bell state.
    pub pair_fidelity: f64,
}

/// Scans the pump amplitude and reports the rate-vs-quality trade that
/// forces the §V boost: the four-fold rate grows as the fourth power of
/// the pump amplitude while the pairwise visibility (and hence every
/// entanglement figure) degrades.
pub fn pump_trade_scan(
    source: &QfcSource,
    config: &TimeBinConfig,
    factors: &[f64],
) -> Vec<PumpTradeRow> {
    let mu_ref = channel_state_model_boosted(source, config, 1, 1.0).mu;
    factors
        .iter()
        .map(|&f| {
            let model = channel_state_model_boosted(source, config, 1, f);
            let target = bell_phi(config.pump_phase);
            PumpTradeRow {
                pump_factor: f,
                mu: model.mu,
                state_visibility: model.state_visibility,
                relative_four_fold_rate: (model.mu / mu_ref).powi(2),
                pair_fidelity: fidelity_with_pure(&model.rho, &target),
            }
        })
        .collect()
}

/// Aggregated §V report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiPhotonReport {
    /// T3 per-channel Bell tomography.
    pub bell: Vec<BellTomographyResult>,
    /// F8 fringe.
    pub fringe: FourPhotonFringe,
    /// T4 tomography.
    pub tomography: FourPhotonTomography,
}

impl MultiPhotonReport {
    /// Comparison rows (paper: entangled Bell states confirmed; 89 %
    /// four-photon visibility; 64 % four-photon fidelity).
    pub fn to_report(&self) -> ExperimentReport {
        let mut r = ExperimentReport::new("§V multi-photon entangled states (T3/F8/T4)");
        let min_c = self
            .bell
            .iter()
            .map(|b| b.concurrence)
            .fold(f64::INFINITY, f64::min);
        r.push(Comparison::new(
            "T3",
            "min channel Bell concurrence (entangled > 0)",
            0.5,
            min_c,
            "",
            Expectation::AtLeast,
        ));
        let min_f = self
            .bell
            .iter()
            .map(|b| b.fidelity)
            .fold(f64::INFINITY, f64::min);
        r.push(Comparison::new(
            "T3",
            "min channel Bell fidelity",
            0.75,
            min_f,
            "",
            Expectation::AtLeast,
        ));
        r.push(Comparison::new(
            "F8",
            "raw four-photon interference visibility",
            0.89,
            self.fringe.visibility,
            "",
            Expectation::Within { rel_tol: 0.08 },
        ));
        r.push(Comparison::new(
            "T4",
            "four-photon tomography fidelity",
            0.64,
            self.tomography.fidelity,
            "",
            Expectation::Within { rel_tol: 0.12 },
        ));
        r
    }
}

/// A fault-aware §V run: the report plus the health record of the
/// supervision that produced it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiPhotonRun {
    /// The physics report (identical to the legacy API when the fault
    /// schedule is empty).
    pub report: MultiPhotonReport,
    /// What went wrong and what the supervisor did about it.
    pub health: HealthReport,
}

impl MultiPhotonRun {
    /// Comparison rows with the health record attached.
    pub fn to_report(&self) -> ExperimentReport {
        self.report.to_report().with_health(self.health.clone())
    }
}

/// The RNG-free planning stage of the §V run: validation, supervisor
/// outcomes, the fault-scaled pump amplitude, and the adjusted
/// four-photon operating point. Everything a shard executor needs to
/// run one T3 channel (or the F8/T4 stages) independently — the
/// campaign layer decomposes the run into shards from this plan, and
/// [`try_run_multiphoton_experiment`] drives exactly the same plan in
/// one process.
#[derive(Debug, Clone)]
pub struct MultiPhotonPlan {
    /// Nominal wall-clock duration of the underlying time-bin run, s.
    pub duration_s: f64,
    /// Fault-induced pump amplitude factor (exactly 1.0 when clean).
    pub amp: f64,
    /// Surviving channel indices for the T3 stage, in channel order.
    pub survivors: Vec<u32>,
    /// Fault-adjusted time-bin operating point of the F8/T4 stages.
    pub tb4: TimeBinConfig,
    /// Total four-photon pump amplitude factor (`four_fold_pump_factor
    /// × amp`).
    pub pump4: f64,
    /// Supervisor health accumulated during planning.
    pub health: HealthReport,
}

/// Builds the [`MultiPhotonPlan`]: validation, supervisor planning, and
/// the fault-adjusted operating points. RNG-free apart from the
/// deterministic supervisor `fault_stream` lanes.
///
/// # Errors
///
/// As [`try_run_multiphoton_experiment`].
pub fn plan_multiphoton_experiment(
    source: &QfcSource,
    config: &MultiPhotonConfig,
    seed: u64,
    schedule: &FaultSchedule,
) -> QfcResult<MultiPhotonPlan> {
    if config.timebin.channels < 1 {
        return Err(QfcError::invalid("need at least one channel"));
    }
    if config.four_fold_phase_steps < 2 {
        return Err(QfcError::invalid(
            "need ≥ 2 phase steps for the four-photon fringe",
        ));
    }
    let duration_s = nominal_duration_s(&config.timebin);
    let mut health = HealthReport::pristine();
    let policy = SupervisorPolicy::default();
    supervisor::record_schedule_faults(schedule, duration_s, &mut health);
    let relocks =
        supervisor::plan_pump_relocks(schedule, duration_s, &policy, seed, &mut health)?;
    let live = supervisor::live_fraction(&relocks, duration_s);
    let survivors = supervisor::partition_channels(
        schedule,
        config.timebin.channels,
        duration_s,
        &policy,
        "multiphoton experiment",
        &mut health,
    )?;

    // μ ∝ (pump amplitude)², so the mean rate factor maps to an
    // amplitude factor via its square root; exactly 1.0 when clean.
    let linewidth_hz = source.ring().linewidth().hz();
    let amp = (schedule.mean_pump_rate_factor(0.0, duration_s, linewidth_hz) * live)
        .max(1e-6)
        .sqrt();

    // F8/T4 post-select four-folds from channels 1 and 2, so their
    // operating point carries the phase offset, the channel-1 dark
    // floor, and the geometric-mean thinning of all four arms involved.
    let mut tb4 = config.timebin;
    tb4.pump_phase += schedule.mean_phase_offset(0.0, duration_s);
    tb4.dark_prob_per_gate *= schedule.mean_dark_multiplier(1, 0.0, duration_s);
    let thin = [
        (1, Arm::Signal),
        (1, Arm::Idler),
        (2, Arm::Signal),
        (2, Arm::Idler),
    ]
    .iter()
    .map(|&(m, arm)| 1.0 - schedule.dead_fraction(m, arm, 0.0, duration_s))
    .product::<f64>()
    .powf(0.25);
    tb4.arm_efficiency *= thin;
    let pump4 = config.four_fold_pump_factor * amp;

    Ok(MultiPhotonPlan {
        duration_s,
        amp,
        survivors,
        tb4,
        pump4,
        health,
    })
}

/// Runs the full §V suite.
pub fn run_multiphoton_experiment(
    source: &QfcSource,
    config: &MultiPhotonConfig,
    seed: u64,
) -> MultiPhotonReport {
    match try_run_multiphoton_experiment(source, config, seed, &FaultSchedule::empty()) {
        Ok(run) => run.report,
        Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// Fallible, fault-aware form of [`run_multiphoton_experiment`].
///
/// The §V suite is frame-based like §IV, so faults enter as pure
/// modifiers of the per-frame probabilities: pump faults and lock-loss
/// outages scale the pump amplitude, phase jumps offset the pump phase,
/// dark bursts raise the accidental floor, and sub-quarantine detector
/// dropouts thin the arm efficiencies. The four-photon runs additionally
/// fall back from MLE to linear inversion when the reconstruction fails
/// to converge. The RNG draw sequence is untouched by an empty schedule,
/// which therefore reproduces the panicking API bit for bit at any
/// thread count.
///
/// # Errors
///
/// [`QfcError::InvalidParameter`] for a bad configuration,
/// [`QfcError::RegimeMismatch`] when the source is not double-pulsed,
/// [`QfcError::ChannelsExhausted`] when every channel is quarantined,
/// and [`QfcError::LockReacquisitionFailed`] when the pump cannot be
/// re-locked.
pub fn try_run_multiphoton_experiment(
    source: &QfcSource,
    config: &MultiPhotonConfig,
    seed: u64,
    schedule: &FaultSchedule,
) -> QfcResult<MultiPhotonRun> {
    let _driver_span = qfc_obs::span("driver.multiphoton");
    crate::report::record_manifest(seed, config, schedule);

    let source_span = qfc_obs::span("driver.multiphoton.source");
    let plan = plan_multiphoton_experiment(source, config, seed, schedule)?;
    let MultiPhotonPlan {
        duration_s,
        amp,
        survivors,
        tb4,
        pump4,
        mut health,
    } = plan;
    drop(source_span);

    // T3 runs on every surviving channel at the (fault-scaled) §IV pump.
    let timetag_span = qfc_obs::span("driver.multiphoton.timetag");
    let op = BellOperatingPoint { duration_s, amp };
    let bell = try_run_bell_tomography(
        source, config, seed, schedule, op, &survivors, &mut health,
    )?;
    drop(timetag_span);

    let analysis_span = qfc_obs::span("driver.multiphoton.analysis");
    let fringe =
        // qfc-lint: allow(rng-lane-flow) — `seed` is already lane-split at the campaign shard boundary; wrapping_add derives disjoint per-stage sub-streams within one shard
        try_four_photon_fringe(source, config, seed.wrapping_add(1), &tb4, pump4)?;
    let tomography = try_four_photon_tomography(
        source,
        config,
        seed.wrapping_add(2),
        &tb4,
        pump4,
        &mut health,
    )?;
    drop(analysis_span);

    let _report_span = qfc_obs::span("driver.multiphoton.report");
    Ok(MultiPhotonRun {
        report: MultiPhotonReport {
            bell,
            fringe,
            tomography,
        },
        health,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source() -> QfcSource {
        QfcSource::paper_device_timebin()
    }

    #[test]
    fn bell_tomography_confirms_entanglement() {
        let results = run_bell_tomography(&source(), &MultiPhotonConfig::fast_demo(), 51);
        for b in &results {
            assert!(b.fidelity > 0.8, "m={}: F = {}", b.m, b.fidelity);
            assert!(b.concurrence > 0.5, "m={}: C = {}", b.m, b.concurrence);
        }
    }

    #[test]
    fn four_photon_visibility_near_paper() {
        let fringe = run_four_photon_fringe(&source(), &MultiPhotonConfig::fast_demo(), 52);
        assert!(
            (fringe.visibility - 0.89).abs() < 0.08,
            "V4 = {}",
            fringe.visibility
        );
    }

    #[test]
    fn four_photon_fringe_has_pi_period() {
        let fringe = run_four_photon_fringe(&source(), &MultiPhotonConfig::fast_demo(), 53);
        // The scan covers one π period; max and min must both occur.
        let max = fringe.points.iter().map(|p| p.1).max().expect("points");
        let min = fringe.points.iter().map(|p| p.1).min().expect("points");
        assert!(max > 3 * min.max(1), "max {max} min {min}");
    }

    #[test]
    fn four_photon_tomography_fidelity_near_paper() {
        let tomo = run_four_photon_tomography(&source(), &MultiPhotonConfig::fast_demo(), 54);
        assert!(
            (tomo.fidelity - 0.64).abs() < 0.12,
            "F4 = {}",
            tomo.fidelity
        );
        assert!(tomo.total_counts > 0);
    }

    #[test]
    fn report_rows_pass() {
        let report = run_multiphoton_experiment(&source(), &MultiPhotonConfig::fast_demo(), 55);
        let rows = report.to_report();
        assert!(rows.all_pass(), "{}", rows.render());
    }

    #[test]
    fn empty_schedule_matches_legacy_run() {
        let cfg = MultiPhotonConfig::fast_demo();
        let legacy = run_multiphoton_experiment(&source(), &cfg, 55);
        let run = try_run_multiphoton_experiment(&source(), &cfg, 55, &FaultSchedule::empty())
            .expect("clean run");
        assert!(run.health.is_pristine(), "{}", run.health.render());
        assert_eq!(
            serde_json::to_string(&legacy).expect("json"),
            serde_json::to_string(&run.report).expect("json"),
        );
    }

    #[test]
    fn stress_schedule_survives_with_finite_figures() {
        let cfg = MultiPhotonConfig::fast_demo();
        let duration = nominal_duration_s(&cfg.timebin);
        let schedule = FaultSchedule::stress(11, duration);
        let run = try_run_multiphoton_experiment(&source(), &cfg, 55, &schedule)
            .expect("run survives the stress schedule");
        assert!(!run.health.is_pristine());
        for b in &run.report.bell {
            assert!(b.fidelity.is_finite() && b.concurrence.is_finite(), "m={}", b.m);
        }
        assert!(run.report.fringe.visibility.is_finite());
        assert!(run.report.tomography.fidelity.is_finite());
        let rendered = run.to_report().render();
        assert!(rendered.contains("health:"), "{rendered}");
    }

    #[test]
    fn wrong_regime_is_a_taxonomy_error() {
        let err = try_run_multiphoton_experiment(
            &QfcSource::paper_device(),
            &MultiPhotonConfig::fast_demo(),
            1,
            &FaultSchedule::empty(),
        )
        .expect_err("CW source cannot run the multi-photon experiment");
        assert!(matches!(err, QfcError::RegimeMismatch { .. }));
    }

    #[test]
    fn pump_trade_is_monotone() {
        let rows = pump_trade_scan(
            &source(),
            &TimeBinConfig::paper(),
            &[1.0, 2.0, 3.0, 5.0],
        );
        assert_eq!(rows.len(), 4);
        assert!((rows[0].relative_four_fold_rate - 1.0).abs() < 1e-12);
        for w in rows.windows(2) {
            // Rate rises as the 4th power of the amplitude…
            assert!(w[1].relative_four_fold_rate > w[0].relative_four_fold_rate);
            // …while visibility and pair fidelity fall.
            assert!(w[1].state_visibility < w[0].state_visibility);
            assert!(w[1].pair_fidelity < w[0].pair_fidelity);
        }
        // μ ∝ factor².
        assert!((rows[1].mu / rows[0].mu - 4.0).abs() < 1e-9);
    }
}
