//! Per-file symbol resolution: function items, call sites, panic sites,
//! RNG-constructor sites, parallel-closure spans, and the local facts
//! (bindings, compound assignments) the flow rules consume.
//!
//! This is deliberately *not* a parser. It walks the token stream from
//! [`crate::lexer`] with a handful of balanced-delimiter scans, which is
//! enough to recover the workspace's call structure by name. The
//! soundness caveats (name-based resolution, no type information) are
//! documented in DESIGN.md §16; every consumer treats the result as an
//! over-approximation of the real call graph.

use std::collections::BTreeSet;

use crate::lexer::{TokKind, Token};
use crate::rules::PANIC_MACROS;

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (the last pattern identifier, or `self`).
    pub name: String,
    /// Flattened type text (token texts joined by spaces).
    pub ty: String,
}

/// A call expression `callee(…)`, `recv.callee(…)`, or `callee::<T>(…)`.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Last path segment of the callee.
    pub callee: String,
    /// Whether the call is a method call (`.callee(…)`).
    pub is_method: bool,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// 1-based source line of the callee identifier.
    pub line: u32,
    /// 1-based source column of the callee identifier.
    pub col: u32,
    /// Half-open token ranges of the top-level arguments.
    pub args: Vec<(usize, usize)>,
}

/// What kind of panic a panic site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro,
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(…)`.
    Expect,
}

/// A statically-identified panic site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Which construct panics here.
    pub kind: PanicKind,
    /// The construct's display form (`panic!`, `unwrap`, …).
    pub what: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// A `rng_from_seed(…)` constructor call.
#[derive(Debug, Clone)]
pub struct RngCtor {
    /// Token index of the `rng_from_seed` identifier.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Half-open token range of the seed argument, if present.
    pub arg: Option<(usize, usize)>,
}

/// A shared-state hazard identifier (the `par-merge-order` alphabet).
#[derive(Debug, Clone)]
pub struct HazardSite {
    /// The offending identifier (`Mutex`, `fetch_add`, `lock`, …).
    pub what: String,
    /// Token index of the identifier.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// A compound assignment (`+=`, `-=`, `<<=`, …) and its base binding.
#[derive(Debug, Clone)]
pub struct CompoundAssign {
    /// The operator characters (e.g. `+=`).
    pub op: String,
    /// Root identifier of the left-hand side (`a` in `a.b[i] += x`).
    pub root: Option<String>,
    /// Token index of the operator.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// One `fn` item (free function, method, or bodiless trait signature).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// 1-based line where the declaration starts (`pub`/`fn` qualifier).
    pub decl_line: u32,
    /// Whether the item carries an unscoped `pub` qualifier.
    pub is_pub: bool,
    /// Declared parameters in order.
    pub params: Vec<Param>,
    /// Half-open token range of the `{…}` body (absent for trait
    /// signatures without a default body).
    pub body: Option<(usize, usize)>,
    /// Call sites inside the body.
    pub calls: Vec<CallSite>,
    /// Panic sites inside the body.
    pub panic_sites: Vec<PanicSite>,
    /// `rng_from_seed` constructor calls inside the body.
    pub rng_ctors: Vec<RngCtor>,
    /// Shared-state hazard identifiers inside the body.
    pub hazards: Vec<HazardSite>,
    /// Compound assignments inside the body.
    pub assigns: Vec<CompoundAssign>,
    /// Slice/array indexing expressions inside the body (audit metric).
    pub index_sites: u32,
}

/// Role of a closure argument to a `par_*` runtime call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClosureRole {
    /// Runs concurrently on the worker pool (per-item / per-shard).
    Parallel,
    /// The serial merge stage of `par_shots`.
    Merge,
}

/// One closure argument of a `par_map`/`par_chunks`/`par_shots` call.
#[derive(Debug, Clone)]
pub struct ParClosure {
    /// Which runtime entry point the closure is passed to.
    pub kind: String,
    /// Role of this argument.
    pub role: ClosureRole,
    /// 1-based line of the runtime call.
    pub line: u32,
    /// 1-based column of the runtime call.
    pub col: u32,
    /// Half-open token range of the closure body (after the `|…|`).
    pub body: (usize, usize),
    /// Closure parameter identifiers (all idents in the `|…|` group).
    pub params: Vec<String>,
    /// Index into [`FileSymbols::fns`] of the enclosing function.
    pub owner: Option<usize>,
    /// For a `Merge` argument passed as a bare function name: that name.
    pub merge_callee: Option<String>,
}

/// Everything the semantic layer needs to know about one file.
#[derive(Debug, Clone, Default)]
pub struct FileSymbols {
    /// Function items in source order.
    pub fns: Vec<FnItem>,
    /// Parallel/merge closure spans in source order.
    pub par_closures: Vec<ParClosure>,
}

/// Runtime entry points whose closure arguments run on the worker pool.
pub const PAR_ENTRY_POINTS: &[&str] = &["par_map", "par_chunks", "par_shots"];

/// Identifiers that can directly precede `(` without being a call.
fn is_call_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "break"
            | "continue"
            | "move"
            | "in"
            | "as"
            | "let"
            | "else"
            | "fn"
            | "impl"
            | "where"
            | "use"
            | "mod"
            | "unsafe"
            | "async"
            | "await"
            | "dyn"
            | "ref"
            | "mut"
            | "pub"
            | "crate"
            | "super"
            | "self"
            | "Self"
            | "static"
            | "const"
            | "type"
            | "struct"
            | "enum"
            | "trait"
    )
}

/// Keywords that can directly precede `[` without forming an index
/// expression (e.g. `return [a, b]`, `in [0, 1]`).
pub fn is_keyword_before_bracket(name: &str) -> bool {
    matches!(
        name,
        "return" | "in" | "if" | "else" | "match" | "break" | "as" | "mut" | "dyn" | "where"
    )
}

/// A resolver over one file's token stream. `code` holds the indices of
/// non-comment tokens outside `#[cfg(test)]` regions.
struct Resolver<'t> {
    tokens: &'t [Token],
    code: &'t [usize],
}

impl<'t> Resolver<'t> {
    fn tok(&self, j: usize) -> Option<&'t Token> {
        self.code.get(j).map(|&ti| &self.tokens[ti])
    }

    fn is_punct(&self, j: usize, c: &str) -> bool {
        self.tok(j)
            .map(|t| t.kind == TokKind::Punct && t.text == c)
            .unwrap_or(false)
    }

    fn is_ident(&self, j: usize, name: &str) -> bool {
        self.tok(j)
            .map(|t| t.kind == TokKind::Ident && t.text == name)
            .unwrap_or(false)
    }

    /// Skips a balanced `<…>` group starting at `j` (which must be `<`),
    /// treating `->` as atomic. Returns the code index just past `>`.
    fn skip_angles(&self, mut j: usize) -> usize {
        let mut depth = 0i64;
        while let Some(t) = self.tok(j) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => depth += 1,
                    "-" if self.is_punct(j + 1, ">") => j += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            return j + 1;
                        }
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        j
    }

    /// Splits the argument list opening at code index `j` (which must be
    /// `(`) into half-open *token* ranges at top-level commas. Returns
    /// the ranges and the code index just past the closing `)`.
    fn split_args(&self, j: usize) -> (Vec<(usize, usize)>, usize) {
        let mut args = Vec::new();
        let mut depth = 0i64;
        let mut angle = 0i64;
        let mut k = j;
        let mut start: Option<usize> = None;
        while let Some(t) = self.tok(k) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => {
                        depth += 1;
                        if depth == 1 {
                            k += 1;
                            start = self.code.get(k).copied();
                            continue;
                        }
                    }
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth == 0 {
                            let end = self.code.get(k).copied().unwrap_or(self.tokens.len());
                            if let Some(s) = start {
                                if s < end {
                                    args.push((s, end));
                                }
                            }
                            return (args, k + 1);
                        }
                    }
                    "<" if depth >= 1 => angle += 1,
                    "-" if self.is_punct(k + 1, ">") => k += 1,
                    ">" if angle > 0 => angle -= 1,
                    "," if depth == 1 && angle == 0 => {
                        let end = self.code.get(k).copied().unwrap_or(self.tokens.len());
                        if let Some(s) = start {
                            args.push((s, end));
                        }
                        start = self.code.get(k + 1).copied();
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        (args, k)
    }
}

/// Resolves one file. `tokens` is the full lex stream; `in_test` masks
/// `#[cfg(test)]` regions (resolved items never include test code).
pub fn resolve_file(tokens: &[Token], in_test: &[bool]) -> FileSymbols {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            !in_test[i] && !matches!(tokens[i].kind, TokKind::LineComment | TokKind::BlockComment)
        })
        .collect();
    let r = Resolver {
        tokens,
        code: &code,
    };

    let mut fns = collect_fns(&r);
    let par_closures = collect_events(&r, &mut fns);
    FileSymbols { fns, par_closures }
}

/// Pass 1: find every `fn` item, its visibility, parameters, and body span.
fn collect_fns(r: &Resolver<'_>) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut j = 0usize;
    while j < r.code.len() {
        if !r.is_ident(j, "fn") {
            j += 1;
            continue;
        }
        let Some(name_tok) = r.tok(j + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            // `fn(u8) -> u8` function-pointer type.
            j += 1;
            continue;
        }
        let (is_pub, decl_line) = scan_qualifiers(r, j, name_tok.line);
        let mut k = j + 2;
        if r.is_punct(k, "<") {
            k = r.skip_angles(k);
        }
        if !r.is_punct(k, "(") {
            j += 1;
            continue;
        }
        let (param_ranges, after) = r.split_args(k);
        let params = param_ranges
            .iter()
            .map(|&(s, e)| parse_param(r.tokens, s, e))
            .collect();
        let body = find_body(r, after);
        fns.push(FnItem {
            name: name_tok.text.clone(),
            line: name_tok.line,
            col: name_tok.col,
            decl_line,
            is_pub,
            params,
            body,
            calls: Vec::new(),
            panic_sites: Vec::new(),
            rng_ctors: Vec::new(),
            hazards: Vec::new(),
            assigns: Vec::new(),
            index_sites: 0,
        });
        // Continue from just past the name so nested fns are found too.
        j += 2;
    }
    fns
}

/// Walks backward from the `fn` keyword over declaration qualifiers.
/// Returns whether an unscoped `pub` was seen and the declaration line.
fn scan_qualifiers(r: &Resolver<'_>, fn_j: usize, name_line: u32) -> (bool, u32) {
    let mut is_pub = false;
    let mut decl_line = name_line;
    let mut k = fn_j;
    while k > 0 {
        let Some(t) = r.tok(k - 1) else { break };
        let accept = match t.kind {
            TokKind::Ident => matches!(
                t.text.as_str(),
                "const" | "async" | "unsafe" | "extern" | "crate" | "super" | "self" | "in"
            ),
            TokKind::StrLit => true, // `extern "C"`
            TokKind::Punct => t.text == "(" || t.text == ")",
            _ => false,
        };
        if t.kind == TokKind::Ident && t.text == "pub" {
            // `pub(crate)` and friends are not public API.
            if !r.is_punct(k, "(") {
                is_pub = true;
            }
            decl_line = t.line;
            k -= 1;
            continue;
        }
        if !accept {
            break;
        }
        decl_line = t.line;
        k -= 1;
    }
    (is_pub, decl_line)
}

/// Extracts a parameter's binding name and type text from a token range.
fn parse_param(tokens: &[Token], start: usize, end: usize) -> Param {
    let idents_before_colon = |upto: usize| -> Vec<&str> {
        (start..upto)
            .filter(|&i| tokens[i].kind == TokKind::Ident)
            .map(|i| tokens[i].text.as_str())
            .collect()
    };
    // Find the top-level `:` separating pattern from type.
    let mut depth = 0i64;
    let mut colon: Option<usize> = None;
    for i in start..end {
        let t = &tokens[i];
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                ":" if depth == 0 => {
                    // `::` path separators are two adjacent colons.
                    let next_is_colon = tokens
                        .get(i + 1)
                        .map(|n| n.kind == TokKind::Punct && n.text == ":")
                        .unwrap_or(false);
                    let prev_is_colon = i > start
                        && tokens[i - 1].kind == TokKind::Punct
                        && tokens[i - 1].text == ":";
                    if !next_is_colon && !prev_is_colon {
                        colon = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    match colon {
        Some(c) => {
            let pat = idents_before_colon(c);
            let name = pat
                .iter()
                .rev()
                .find(|n| **n != "mut" && **n != "ref")
                .copied()
                .unwrap_or("_")
                .to_string();
            let ty: Vec<&str> = (c + 1..end)
                .filter(|&i| {
                    !matches!(tokens[i].kind, TokKind::LineComment | TokKind::BlockComment)
                })
                .map(|i| tokens[i].text.as_str())
                .collect();
            Param {
                name,
                ty: ty.join(" "),
            }
        }
        None => {
            // Receiver forms: `self`, `&self`, `&mut self`, `mut self`.
            let has_self = idents_before_colon(end).contains(&"self");
            Param {
                name: if has_self { "self" } else { "_" }.to_string(),
                ty: if has_self { "Self" } else { "" }.to_string(),
            }
        }
    }
}

/// From the code index just past the parameter list, finds the `{…}`
/// body. Returns its half-open token range, or `None` at a `;`.
fn find_body(r: &Resolver<'_>, mut k: usize) -> Option<(usize, usize)> {
    let mut depth = 0i64;
    while let Some(t) = r.tok(k) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "-" if r.is_punct(k + 1, ">") => k += 1,
                ";" if depth <= 0 => return None,
                "{" if depth <= 0 => {
                    let open = r.code[k];
                    let mut brace = 0i64;
                    while let Some(b) = r.tok(k) {
                        if b.kind == TokKind::Punct {
                            if b.text == "{" {
                                brace += 1;
                            } else if b.text == "}" {
                                brace -= 1;
                                if brace == 0 {
                                    return Some((open, r.code[k] + 1));
                                }
                            }
                        }
                        k += 1;
                    }
                    return Some((open, r.tokens.len()));
                }
                _ => {}
            }
        }
        k += 1;
    }
    None
}

/// Pass 2: walk the code tokens once, attributing call/panic/RNG/hazard
/// events to the innermost enclosing fn and collecting `par_*` closures.
fn collect_events(r: &Resolver<'_>, fns: &mut [FnItem]) -> Vec<ParClosure> {
    // Innermost enclosing fn by body-span containment. Spans are copied
    // out up front so the closure does not hold a borrow of `fns`.
    let spans: Vec<Option<(usize, usize)>> = fns.iter().map(|f| f.body).collect();
    let owner_of = move |ti: usize| -> Option<usize> {
        let mut best: Option<usize> = None;
        for (fi, span) in spans.iter().enumerate() {
            if let Some((s, e)) = span {
                if *s <= ti
                    && ti < *e
                    && best
                        .map(|b: usize| spans[b].map(|(bs, _)| bs < *s).unwrap_or(true))
                        .unwrap_or(true)
                {
                    best = Some(fi);
                }
            }
        }
        best
    };

    let mut par_closures = Vec::new();
    for j in 0..r.code.len() {
        let ti = r.code[j];
        let tok = &r.tokens[ti];
        match tok.kind {
            TokKind::Ident => {
                let name = tok.text.as_str();
                let owner = owner_of(ti);
                // Panic macros.
                if PANIC_MACROS.contains(&name) && r.is_punct(j + 1, "!") {
                    if let Some(fi) = owner {
                        fns[fi].panic_sites.push(PanicSite {
                            kind: PanicKind::Macro,
                            what: format!("{name}!"),
                            line: tok.line,
                            col: tok.col,
                        });
                    }
                    continue;
                }
                // `.unwrap()` / `.expect(…)`.
                if (name == "unwrap" || name == "expect")
                    && j > 0
                    && r.is_punct(j - 1, ".")
                    && r.is_punct(j + 1, "(")
                {
                    if let Some(fi) = owner {
                        fns[fi].panic_sites.push(PanicSite {
                            kind: if name == "unwrap" {
                                PanicKind::Unwrap
                            } else {
                                PanicKind::Expect
                            },
                            what: name.to_string(),
                            line: tok.line,
                            col: tok.col,
                        });
                    }
                    // An unwrap/expect is also a call-shaped token; fall
                    // through is not needed — it resolves to no workspace fn.
                    continue;
                }
                // Shared-state hazard identifiers.
                let method_like = j > 0 && r.is_punct(j - 1, ".") && r.is_punct(j + 1, "(");
                let hazard = name == "Mutex"
                    || name == "RwLock"
                    || name.starts_with("Atomic")
                    || (method_like
                        && (name.starts_with("fetch_")
                            || name == "lock"
                            || name == "send"
                            || name == "recv"));
                if hazard {
                    if let Some(fi) = owner {
                        fns[fi].hazards.push(HazardSite {
                            what: name.to_string(),
                            tok: ti,
                            line: tok.line,
                            col: tok.col,
                        });
                    }
                }
                // Call sites (skip keywords, type constructors, macros,
                // and the name position of `fn` declarations).
                if is_call_keyword(name)
                    || name.chars().next().map(char::is_uppercase).unwrap_or(false)
                    || r.is_punct(j + 1, "!")
                    || (j > 0 && r.is_ident(j - 1, "fn"))
                {
                    continue;
                }
                let open = if r.is_punct(j + 1, "(") {
                    Some(j + 1)
                } else if r.is_punct(j + 1, ":") && r.is_punct(j + 2, ":") && r.is_punct(j + 3, "<")
                {
                    let past = r.skip_angles(j + 3);
                    if r.is_punct(past, "(") {
                        Some(past)
                    } else {
                        None
                    }
                } else {
                    None
                };
                let Some(open) = open else { continue };
                let (args, _) = r.split_args(open);
                let is_method = j > 0 && r.is_punct(j - 1, ".");
                let call = CallSite {
                    callee: name.to_string(),
                    is_method,
                    tok: ti,
                    line: tok.line,
                    col: tok.col,
                    args: args.clone(),
                };
                if name == "rng_from_seed" {
                    if let Some(fi) = owner {
                        fns[fi].rng_ctors.push(RngCtor {
                            tok: ti,
                            line: tok.line,
                            col: tok.col,
                            arg: args.first().copied(),
                        });
                    }
                }
                if PAR_ENTRY_POINTS.contains(&name) {
                    collect_par_closures(r, name, tok, &args, owner, &mut par_closures);
                }
                if let Some(fi) = owner {
                    fns[fi].calls.push(call);
                }
            }
            TokKind::Punct if tok.text == "[" && j > 0 => {
                let prev = &r.tokens[r.code[j - 1]];
                let indexing = (prev.kind == TokKind::Ident
                    && !is_keyword_before_bracket(&prev.text))
                    || (prev.kind == TokKind::Punct && (prev.text == ")" || prev.text == "]"));
                if indexing {
                    if let Some(fi) = owner_of(ti) {
                        fns[fi].index_sites += 1;
                    }
                }
            }
            TokKind::Punct
                if matches!(tok.text.as_str(), "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^") =>
            {
                // Compound assignment: the raw next token must be an
                // immediately adjacent `=` (so `a + = b` is not one, and
                // `==`/`!=`/`<=`/`>=` never match).
                let adjacent_eq = r.tokens.get(ti + 1).map(|n| {
                    n.kind == TokKind::Punct
                        && n.text == "="
                        && n.line == tok.line
                        && n.col == tok.col + 1
                });
                // `&&`/`||` shortcut operators and `->` are not assignments;
                // require the token *after* `=` to not be `=` (rules out `==`
                // never matching here anyway) and the previous raw token to
                // not be an operator character.
                if adjacent_eq != Some(true) {
                    continue;
                }
                let prev_is_op = ti > 0
                    && r.tokens[ti - 1].kind == TokKind::Punct
                    && matches!(
                        r.tokens[ti - 1].text.as_str(),
                        "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" | "<" | ">" | "="
                    )
                    && r.tokens[ti - 1].line == tok.line
                    && r.tokens[ti - 1].col + 1 == tok.col;
                if prev_is_op {
                    // `<<=`, `>>=`: handled at the inner operator; skip the
                    // outer one so the event is recorded exactly once.
                    continue;
                }
                if let Some(fi) = owner_of(ti) {
                    let root = assign_root(r, j);
                    fns[fi].assigns.push(CompoundAssign {
                        op: format!("{}=", tok.text),
                        root,
                        tok: ti,
                        line: tok.line,
                        col: tok.col,
                    });
                }
            }
            _ => {}
        }
    }
    par_closures
}

/// Root identifier of the assignment target ending just before code
/// index `op_j`: walks back over `.field`, `.0`, and `[…]` projections.
fn assign_root(r: &Resolver<'_>, op_j: usize) -> Option<String> {
    let mut m = op_j.checked_sub(1)?;
    let mut root: Option<String> = None;
    loop {
        let t = r.tok(m)?;
        match t.kind {
            TokKind::Punct if t.text == "]" => {
                // Skip the balanced index expression.
                let mut depth = 0i64;
                loop {
                    let u = r.tok(m)?;
                    if u.kind == TokKind::Punct {
                        if u.text == "]" {
                            depth += 1;
                        } else if u.text == "[" {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                    }
                    m = m.checked_sub(1)?;
                }
                m = m.checked_sub(1)?;
            }
            TokKind::Ident | TokKind::Number => {
                if t.kind == TokKind::Ident {
                    root = Some(t.text.clone());
                }
                if m > 0 && r.is_punct(m - 1, ".") {
                    m = m.checked_sub(2)?;
                } else {
                    return root;
                }
            }
            _ => return root,
        }
    }
}

/// Parses the closure arguments of one `par_*` call.
fn collect_par_closures(
    r: &Resolver<'_>,
    kind: &str,
    call_tok: &Token,
    args: &[(usize, usize)],
    owner: Option<usize>,
    out: &mut Vec<ParClosure>,
) {
    for (ai, &(start, end)) in args.iter().enumerate() {
        let role = if kind == "par_shots" && ai == args.len().saturating_sub(1) {
            ClosureRole::Merge
        } else {
            ClosureRole::Parallel
        };
        // Code tokens within the argument range.
        let arg_code: Vec<usize> = r
            .code
            .iter()
            .copied()
            .filter(|&ti| ti >= start && ti < end)
            .collect();
        let mut k = 0usize;
        if arg_code
            .get(k)
            .map(|&ti| r.tokens[ti].kind == TokKind::Ident && r.tokens[ti].text == "move")
            .unwrap_or(false)
        {
            k += 1;
        }
        let opens_closure = arg_code
            .get(k)
            .map(|&ti| r.tokens[ti].kind == TokKind::Punct && r.tokens[ti].text == "|")
            .unwrap_or(false);
        if !opens_closure {
            // The last argument passed as a bare function name (a merge
            // fn, or a per-item fn handed straight to the pool); earlier
            // positions are data arguments.
            if ai == args.len().saturating_sub(1) && arg_code.len() == 1 {
                if let Some(&ti) = arg_code.first() {
                    if r.tokens[ti].kind == TokKind::Ident {
                        out.push(ParClosure {
                            kind: kind.to_string(),
                            role,
                            line: call_tok.line,
                            col: call_tok.col,
                            body: (start, start),
                            params: Vec::new(),
                            owner,
                            merge_callee: Some(r.tokens[ti].text.clone()),
                        });
                    }
                }
            }
            continue;
        }
        // Closure parameters: idents up to the matching `|` at depth 0.
        let mut params = Vec::new();
        let mut depth = 0i64;
        let mut body_start = end;
        for (n, &ti) in arg_code.iter().enumerate().skip(k + 1) {
            let t = &r.tokens[ti];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "|" if depth == 0 => {
                        body_start = arg_code.get(n + 1).copied().unwrap_or(end);
                        break;
                    }
                    _ => {}
                }
            } else if t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref" {
                params.push(t.text.clone());
            }
        }
        out.push(ParClosure {
            kind: kind.to_string(),
            role,
            line: call_tok.line,
            col: call_tok.col,
            body: (body_start, end),
            params,
            owner,
            merge_callee: None,
        });
    }
}

/// All binding identifiers introduced inside the half-open token range
/// `[start, end)`: `let` patterns, `for` loop variables, and closure
/// parameter groups. Used to separate local accumulators from captured
/// state inside parallel closures.
pub fn bindings_in(
    tokens: &[Token],
    in_test: &[bool],
    start: usize,
    end: usize,
) -> BTreeSet<String> {
    let code: Vec<usize> = (start..end.min(tokens.len()))
        .filter(|&i| {
            !in_test[i] && !matches!(tokens[i].kind, TokKind::LineComment | TokKind::BlockComment)
        })
        .collect();
    let mut out = BTreeSet::new();
    let mut j = 0usize;
    while j < code.len() {
        let t = &tokens[code[j]];
        if t.kind == TokKind::Ident && (t.text == "let" || t.text == "for") {
            let stop_at = if t.text == "let" { "=" } else { "in" };
            let mut k = j + 1;
            while let Some(&ti) = code.get(k) {
                let u = &tokens[ti];
                let stop = match u.kind {
                    TokKind::Punct => u.text == stop_at || u.text == ";" || u.text == "{",
                    TokKind::Ident => u.text == stop_at,
                    _ => false,
                };
                if stop {
                    break;
                }
                if u.kind == TokKind::Ident && u.text != "mut" && u.text != "ref" {
                    out.insert(u.text.clone());
                }
                k += 1;
            }
            j = k;
            continue;
        }
        // Closure parameter group: `|` in closure position.
        if t.kind == TokKind::Punct && t.text == "|" {
            let closure_position = j == 0
                || code.get(j - 1).map(|&ti| {
                    let p = &tokens[ti];
                    (p.kind == TokKind::Punct
                        && matches!(p.text.as_str(), "(" | "," | "=" | "{" | ";"))
                        || (p.kind == TokKind::Ident
                            && matches!(p.text.as_str(), "move" | "return" | "else"))
                }) == Some(true);
            if closure_position {
                let mut depth = 0i64;
                let mut k = j + 1;
                while let Some(&ti) = code.get(k) {
                    let u = &tokens[ti];
                    if u.kind == TokKind::Punct {
                        match u.text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "|" if depth == 0 => break,
                            _ => {}
                        }
                    } else if u.kind == TokKind::Ident && u.text != "mut" && u.text != "ref" {
                        out.insert(u.text.clone());
                    }
                    k += 1;
                }
                j = k + 1;
                continue;
            }
        }
        j += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn resolve(src: &str) -> FileSymbols {
        let tokens = lex(src);
        let in_test = vec![false; tokens.len()];
        resolve_file(&tokens, &in_test)
    }

    #[test]
    fn fn_items_with_visibility_and_params() {
        let s = resolve(
            "pub fn alpha(n: usize, tau: f64) -> f64 { beta(n) }\n\
             fn beta(k: usize) -> f64 { 0.0 }\n\
             pub(crate) fn gamma() {}\n",
        );
        assert_eq!(s.fns.len(), 3);
        assert!(s.fns[0].is_pub);
        assert!(!s.fns[1].is_pub);
        assert!(!s.fns[2].is_pub, "pub(crate) is not public");
        assert_eq!(s.fns[0].params.len(), 2);
        assert_eq!(s.fns[0].params[0].name, "n");
        assert_eq!(s.fns[0].params[1].ty, "f64");
        assert_eq!(s.fns[0].calls.len(), 1);
        assert_eq!(s.fns[0].calls[0].callee, "beta");
    }

    #[test]
    fn panic_sites_and_nested_attribution() {
        let s = resolve(
            "fn outer() {\n    fn inner() { panic!(\"x\") }\n    inner();\n    a.unwrap();\n}\n",
        );
        let outer = s.fns.iter().find(|f| f.name == "outer").expect("outer");
        let inner = s.fns.iter().find(|f| f.name == "inner").expect("inner");
        assert_eq!(inner.panic_sites.len(), 1);
        assert_eq!(inner.panic_sites[0].kind, PanicKind::Macro);
        assert_eq!(outer.panic_sites.len(), 1);
        assert_eq!(outer.panic_sites[0].kind, PanicKind::Unwrap);
        // `unwrap_or` must not count.
        let s2 = resolve("fn f() { a.unwrap_or(0); }\n");
        assert!(s2.fns[0].panic_sites.is_empty());
    }

    #[test]
    fn rng_ctor_and_turbofish_calls() {
        let s = resolve(
            "fn f(seed: u64) {\n    let mut rng = rng_from_seed(split_seed(seed, 1));\n    \
             parse::<u64>(x);\n}\n",
        );
        assert_eq!(s.fns[0].rng_ctors.len(), 1);
        assert!(s.fns[0].calls.iter().any(|c| c.callee == "parse"));
        assert!(s.fns[0].calls.iter().any(|c| c.callee == "split_seed"));
    }

    #[test]
    fn par_closures_and_roles() {
        let s = resolve(
            "fn f(items: &[u64], seed: u64) {\n\
             let v = par_map(items, |&x| x + 1);\n\
             let w = par_shots(100, seed, |shard| shard.len, merge_all);\n}\n",
        );
        assert_eq!(s.par_closures.len(), 3);
        assert_eq!(s.par_closures[0].kind, "par_map");
        assert_eq!(s.par_closures[0].role, ClosureRole::Parallel);
        assert_eq!(s.par_closures[0].params, vec!["x".to_string()]);
        assert_eq!(s.par_closures[1].role, ClosureRole::Parallel);
        assert_eq!(s.par_closures[1].params, vec!["shard".to_string()]);
        assert_eq!(s.par_closures[2].role, ClosureRole::Merge);
        assert_eq!(
            s.par_closures[2].merge_callee.as_deref(),
            Some("merge_all")
        );
    }

    #[test]
    fn compound_assign_roots() {
        let s = resolve("fn f() { total += 1.0; self.acc[i] -= x; a == b; c <= d; }\n");
        let roots: Vec<Option<String>> = s.fns[0].assigns.iter().map(|a| a.root.clone()).collect();
        assert_eq!(
            roots,
            vec![Some("total".to_string()), Some("self".to_string())]
        );
    }

    #[test]
    fn bindings_cover_lets_loops_and_closure_params() {
        let src = "{ let mut total = 0.0; for k in 0..4 { } items.map(|&(a, b)| a); }";
        let tokens = lex(src);
        let in_test = vec![false; tokens.len()];
        let b = bindings_in(&tokens, &in_test, 0, tokens.len());
        for name in ["total", "k", "a", "b"] {
            assert!(b.contains(name), "missing binding {name}: {b:?}");
        }
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let s = resolve("trait W { fn run_shard(&self, slot: usize) -> u64; }\n");
        assert_eq!(s.fns.len(), 1);
        assert!(s.fns[0].body.is_none());
        assert_eq!(s.fns[0].params[0].name, "self");
    }
}
