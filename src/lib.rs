//! # qfc — Generation of Complex Quantum States via Integrated Frequency Combs
//!
//! Facade crate re-exporting the full `qfc` workspace: a physics-faithful
//! Rust reproduction of Reimer *et al.*, "Generation of Complex Quantum
//! States via Integrated Frequency Combs" (DATE 2017).
//!
//! The workspace simulates the complete experimental stack — Hydex microring
//! quantum frequency comb, spontaneous four-wave mixing, single-photon
//! detection and time tagging, unbalanced interferometry, and quantum state
//! tomography — and regenerates every quantitative claim of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use qfc::core::source::QfcSource;
//! use qfc::core::heralded::{HeraldedConfig, run_heralded_experiment};
//!
//! // The paper's device with its §II pump configuration, scaled down for a
//! // fast doctest.
//! let source = QfcSource::paper_device();
//! let mut cfg = HeraldedConfig::paper();
//! cfg.duration_s = 10.0;
//! let report = run_heralded_experiment(&source, &cfg, 42);
//! assert!(report.mean_car() > 1.0);
//! ```

#![forbid(unsafe_code)]

pub use qfc_campaign as campaign;
pub use qfc_core as core;
pub use qfc_faults as faults;
pub use qfc_interferometry as interferometry;
pub use qfc_mathkit as mathkit;
pub use qfc_obs as obs;
pub use qfc_photonics as photonics;
pub use qfc_quantum as quantum;
pub use qfc_runtime as runtime;
pub use qfc_timetag as timetag;
pub use qfc_tomography as tomography;
