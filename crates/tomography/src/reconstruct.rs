//! Density-matrix reconstruction: linear inversion and iterative
//! maximum-likelihood (RρR).
//!
//! Linear inversion is unbiased but can return unphysical (negative-
//! eigenvalue) matrices at finite counts; the paper-standard pipeline is
//! the iterative RρR maximum-likelihood algorithm, which stays in the
//! physical cone. The ablation bench `ablation_tomography` compares them.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_faults::{QfcError, QfcResult};
use qfc_mathkit::cmatrix::CMatrix;
use qfc_mathkit::complex::Complex64;
use qfc_mathkit::hermitian::psd_projection;
use qfc_quantum::density::DensityMatrix;

use crate::counts::TomographyData;
use crate::settings::{pauli_string_matrix, PauliBasis, ProjectorSet};

/// Reconstructs a Hermitian unit-trace matrix by Pauli-basis linear
/// inversion: `ρ = 2⁻ⁿ Σ_s ⟨σ_s⟩ σ_s`, with each Pauli-string expectation
/// averaged over every compatible measurement setting.
///
/// The result may have (slightly) negative eigenvalues at finite counts;
/// pair with [`project_physical`] when a valid state is required.
///
/// # Panics
///
/// Panics if the data is empty or settings are inconsistent.
pub fn linear_inversion(data: &TomographyData) -> CMatrix {
    match try_linear_inversion(data) {
        Ok(rho) => rho,
        Err(e) => panic!("{e}"), // qfc-lint: allow(panic-surface) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// Fallible form of [`linear_inversion`]: returns
/// [`QfcError::InsufficientData`] for informationally incomplete data
/// instead of panicking.
pub fn try_linear_inversion(data: &TomographyData) -> QfcResult<CMatrix> {
    let n = data.qubits();
    let dim = 1usize << n;
    let mut rho = CMatrix::zeros(dim, dim);
    // Enumerate all 4ⁿ Pauli strings as base-4 digits:
    // 0 = I, 1 = X, 2 = Y, 3 = Z per qubit.
    let strings = 4usize.pow(cast::usize_to_u32(n));
    for code in 0..strings {
        let digits: Vec<usize> = (0..n)
            .map(|q| (code / 4usize.pow(cast::usize_to_u32(n - 1 - q))) % 4)
            .collect();
        let string: Vec<Option<PauliBasis>> = digits
            .iter()
            .map(|&d| match d {
                0 => None,
                1 => Some(PauliBasis::X),
                2 => Some(PauliBasis::Y),
                _ => Some(PauliBasis::Z),
            })
            .collect();
        // Expectation from all compatible settings.
        let mut acc = 0.0;
        let mut n_compat = 0usize;
        let mask: usize = digits
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != 0)
            .map(|(q, _)| 1usize << (n - 1 - q))
            .sum();
        for (s_idx, setting) in data.settings.iter().enumerate() {
            let compatible = string.iter().zip(&setting.0).all(|(want, have)| {
                want.is_none_or(|w| w == *have)
            });
            if !compatible || data.setting_total(s_idx) == 0 {
                continue;
            }
            let mut exp = 0.0;
            for o in 0..setting.outcomes() {
                exp += data.frequency(s_idx, o) * setting.outcome_sign(o, mask);
            }
            acc += exp;
            n_compat += 1;
        }
        if n_compat == 0 {
            return Err(QfcError::InsufficientData {
                context: format!(
                    "no compatible setting for Pauli string {digits:?}; \
                     tomography data is informationally incomplete"
                ),
            });
        }
        let expectation = acc / cast::to_f64(n_compat);
        let sigma = pauli_string_matrix(&string);
        rho = &rho + &sigma.scale(expectation / cast::to_f64(dim));
    }
    Ok(rho)
}

/// Projects a Hermitian matrix onto the physical state space: clips
/// negative eigenvalues and renormalizes the trace to 1.
///
/// # Panics
///
/// Panics if the projected trace vanishes.
pub fn project_physical(mat: &CMatrix) -> DensityMatrix {
    match try_project_physical(mat) {
        Ok(rho) => rho,
        Err(e) => panic!("{e}"), // qfc-lint: allow(panic-surface) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// Fallible form of [`project_physical`]: reports a vanishing projected
/// trace (or a non-Hermitian input the density-matrix constructor
/// rejects) instead of panicking.
pub fn try_project_physical(mat: &CMatrix) -> QfcResult<DensityMatrix> {
    let p = psd_projection(mat);
    let tr = p.trace().re;
    if tr.is_nan() || tr <= 1e-12 {
        return Err(QfcError::SingularSystem {
            context: "physical projection: projection annihilated the matrix".to_owned(),
        });
    }
    DensityMatrix::from_matrix(p.scale(1.0 / tr))
        .ok_or_else(|| QfcError::non_finite("physical projection"))
}

/// Options for the iterative MLE reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MleOptions {
    /// Maximum RρR iterations.
    pub max_iterations: usize,
    /// Stop when the Frobenius norm of the update falls below this.
    pub tolerance: f64,
}

impl Default for MleOptions {
    fn default() -> Self {
        Self {
            max_iterations: 300,
            tolerance: 1e-10,
        }
    }
}

/// Result of an MLE reconstruction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MleResult {
    /// The reconstructed physical state.
    pub rho: DensityMatrix,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final update norm.
    pub final_update: f64,
    /// `true` when the final update met the tolerance within the
    /// iteration budget — `false` signals divergence and is the trigger
    /// for the supervisor's linear-inversion fallback.
    pub converged: bool,
}

/// Iterative RρR maximum-likelihood reconstruction.
///
/// `ρ_{k+1} ∝ R ρ_k R` with `R = Σ_{s,o} (f_{s,o}/p_{s,o})·Π_{s,o}`,
/// starting from the maximally mixed state. For informationally complete
/// data this converges to the maximum-likelihood physical state.
///
/// Builds the outcome projectors for this call only; reconstructions
/// that share one setting list (bootstrap replicas, per-channel scans)
/// should build a [`ProjectorSet`] once and call
/// [`mle_reconstruction_with`].
pub fn mle_reconstruction(data: &TomographyData, options: &MleOptions) -> MleResult {
    mle_reconstruction_with(&ProjectorSet::new(&data.settings), data, options)
}

/// [`mle_reconstruction`] against a prebuilt projector cache.
///
/// The RρR iteration runs entirely in scratch buffers: per iteration it
/// performs no allocation, no projector rebuild, and no full matrix
/// product where only a trace is needed. The arithmetic is ordered
/// exactly as the allocating formulation (`tr(ρ·Π)` via the skip-zero
/// product loop, `R` accumulated in `(s, o)` order over `f > 0`
/// outcomes, `RρR` as two products), so results are bit-identical.
///
/// # Panics
///
/// Panics if `projectors` was not built from `data`'s setting list.
pub fn mle_reconstruction_with(
    projectors: &ProjectorSet,
    data: &TomographyData,
    options: &MleOptions,
) -> MleResult {
    let n = data.qubits();
    let dim = 1usize << n;
    assert_eq!(
        projectors.settings(),
        data.settings.len(),
        "projector cache does not match the data's settings"
    );
    assert_eq!(projectors.dim(), dim, "projector cache dimension mismatch");
    let mut rho = CMatrix::identity(dim).scale(1.0 / cast::to_f64(dim));

    // Gather (projector, frequency) pairs once, in the same (s, o) order
    // and with the same f > 0 filter as the per-call rebuild this
    // replaces.
    let mut pairs: Vec<(&CMatrix, f64)> = Vec::new();
    for (s_idx, setting) in data.settings.iter().enumerate() {
        for o in 0..setting.outcomes() {
            let f = data.frequency(s_idx, o);
            if f > 0.0 {
                pairs.push((projectors.projector(s_idx, o), f));
            }
        }
    }

    let mut r = CMatrix::zeros(dim, dim);
    let mut r_rho = CMatrix::zeros(dim, dim);
    let mut next = CMatrix::zeros(dim, dim);
    let mut iterations = 0;
    let mut final_update = f64::INFINITY;
    // qfc-lint: hot
    for _ in 0..options.max_iterations {
        iterations += 1;
        r.fill_zero();
        for &(proj, f) in &pairs {
            let p = rho.trace_of_product(proj).re.max(1e-12);
            r.add_scaled_assign(proj, f / p);
        }
        r.matmul_into(&rho, &mut r_rho);
        r_rho.matmul_into(&r, &mut next);
        let tr = next.trace().re;
        next.scale_in_place(1.0 / tr);
        final_update = next.frobenius_distance(&rho);
        std::mem::swap(&mut rho, &mut next);
        if final_update < options.tolerance {
            break;
        }
    }
    qfc_obs::counter_add("mle_iterations", cast::usize_to_u64(iterations));
    // Numerical cleanup: symmetrize and clip round-off negativity.
    let herm = CMatrix::from_fn(dim, dim, |i, j| {
        (rho[(i, j)] + rho[(j, i)].conj()).scale(0.5)
    });
    let rho = project_physical(&herm);
    MleResult {
        rho,
        iterations,
        converged: final_update < options.tolerance,
        final_update,
    }
}

/// Convenience: full pipeline from data to a physical state via linear
/// inversion + projection (the fast path).
pub fn linear_reconstruction(data: &TomographyData) -> DensityMatrix {
    project_physical(&linear_inversion(data))
}

/// Fallible form of [`linear_reconstruction`].
pub fn try_linear_reconstruction(data: &TomographyData) -> QfcResult<DensityMatrix> {
    try_project_physical(&try_linear_inversion(data)?)
}

/// Convenience accessor for matrix elements of a reconstruction in
/// reports.
pub fn element(rho: &DensityMatrix, i: usize, j: usize) -> Complex64 {
    rho.as_matrix()[(i, j)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::{exact_counts, simulate_counts};
    use crate::settings::all_settings;
    use qfc_mathkit::rng::rng_from_seed;
    use qfc_quantum::bell::{bell_phi_plus, werner_state};
    use qfc_quantum::fidelity::state_fidelity;
    use qfc_quantum::state::PureState;

    #[test]
    fn linear_inversion_exact_single_qubit() {
        let rho = DensityMatrix::from_pure(&PureState::plus());
        let data = exact_counts(&rho, &all_settings(1), 10_000_000);
        let rec = linear_inversion(&data);
        assert!(rec.approx_eq(rho.as_matrix(), 1e-4));
    }

    #[test]
    fn linear_inversion_exact_bell_state() {
        let rho = DensityMatrix::from_pure(&bell_phi_plus());
        let data = exact_counts(&rho, &all_settings(2), 10_000_000);
        let rec = project_physical(&linear_inversion(&data));
        let f = state_fidelity(&rec, &rho);
        assert!(f > 0.999, "F = {f}");
    }

    #[test]
    fn mle_recovers_werner_state() {
        let mut rng = rng_from_seed(31);
        let rho = werner_state(0.83, 0.0);
        let data = simulate_counts(&mut rng, &rho, &all_settings(2), 4000);
        let result = mle_reconstruction(&data, &MleOptions::default());
        let f = state_fidelity(&result.rho, &rho);
        assert!(f > 0.99, "F = {f}");
        assert!(result.rho.is_physical(1e-9));
    }

    #[test]
    fn mle_beats_or_matches_linear_at_low_counts() {
        let mut rng = rng_from_seed(32);
        let truth = werner_state(0.9, 0.3);
        let data = simulate_counts(&mut rng, &truth, &all_settings(2), 60);
        let lin = linear_reconstruction(&data);
        let mle = mle_reconstruction(&data, &MleOptions::default()).rho;
        let f_lin = state_fidelity(&lin, &truth);
        let f_mle = state_fidelity(&mle, &truth);
        // MLE should not be (much) worse; both should be decent.
        assert!(f_mle > f_lin - 0.05, "MLE {f_mle} vs linear {f_lin}");
        assert!(f_mle > 0.8);
    }

    #[test]
    fn mle_converges() {
        let mut rng = rng_from_seed(33);
        let rho = DensityMatrix::from_pure(&PureState::plus());
        let data = simulate_counts(&mut rng, &rho, &all_settings(1), 5000);
        let result = mle_reconstruction(&data, &MleOptions::default());
        assert!(result.iterations < 300, "iterations {}", result.iterations);
        assert!(result.final_update < 1e-8);
        assert!(result.converged);
    }

    #[test]
    fn mle_divergence_flagged() {
        let mut rng = rng_from_seed(35);
        let rho = werner_state(0.83, 0.0);
        let data = simulate_counts(&mut rng, &rho, &all_settings(2), 4000);
        // One iteration against an unattainable tolerance cannot converge.
        let opts = MleOptions {
            max_iterations: 1,
            tolerance: 1e-30,
        };
        let result = mle_reconstruction(&data, &opts);
        assert!(!result.converged);
    }

    #[test]
    fn try_linear_inversion_reports_incomplete_data() {
        use crate::settings::{PauliBasis, Setting};
        let rho = DensityMatrix::from_pure(&PureState::plus());
        let data = exact_counts(&rho, &[Setting::from_bases(&[PauliBasis::Z])], 1000);
        let err = try_linear_inversion(&data).unwrap_err();
        assert!(err.to_string().contains("informationally incomplete"));
    }

    #[test]
    fn projection_fixes_unphysical_matrix() {
        use qfc_mathkit::complex::C_ONE;
        // diag(1.2, −0.2): Hermitian, trace 1, not PSD.
        let bad = CMatrix::diag(&[C_ONE.scale(1.2), C_ONE.scale(-0.2)]);
        let fixed = project_physical(&bad);
        assert!(fixed.is_physical(1e-10));
        assert!((fixed.as_matrix().trace().re - 1.0).abs() < 1e-10);
        assert_eq!(element(&fixed, 1, 1).re, 0.0);
    }

    #[test]
    fn linear_inversion_finite_counts_near_truth() {
        let mut rng = rng_from_seed(34);
        let rho = werner_state(0.7, 0.0);
        let data = simulate_counts(&mut rng, &rho, &all_settings(2), 20_000);
        let rec = linear_reconstruction(&data);
        let f = state_fidelity(&rec, &rho);
        assert!(f > 0.995, "F = {f}");
    }

    #[test]
    #[should_panic(expected = "informationally incomplete")]
    fn incomplete_data_detected() {
        use crate::settings::{PauliBasis, Setting};
        let rho = DensityMatrix::from_pure(&PureState::plus());
        // Only Z measured: X and Y strings uncovered.
        let data = exact_counts(&rho, &[Setting::from_bases(&[PauliBasis::Z])], 1000);
        let _ = linear_inversion(&data);
    }
}
