//! Physical constants (SI units).

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Planck constant, J·s.
pub const PLANCK: f64 = 6.626_070_15e-34;

/// Reduced Planck constant, J·s.
pub const HBAR: f64 = PLANCK / (2.0 * std::f64::consts::PI);

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Conventional C-band center used throughout the paper: 1550 nm.
pub const TELECOM_WAVELENGTH_M: f64 = 1550e-9;

/// ITU-T anchor frequency for the 193.1-THz DWDM grid, Hz.
pub const ITU_ANCHOR_HZ: f64 = 193.1e12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telecom_frequency_is_near_193_thz() {
        let f = SPEED_OF_LIGHT / TELECOM_WAVELENGTH_M;
        assert!((f - 193.4e12).abs() < 0.2e12, "f = {f}");
    }

    #[test]
    fn hbar_relation() {
        assert!((HBAR * 2.0 * std::f64::consts::PI - PLANCK).abs() < 1e-45);
    }
}
